"""Unit tests for elementwise/linear-algebra autograd primitives."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor, abs_, clip, exp, is_grad_enabled, log, matmul, maximum, minimum,
    no_grad, sqrt, where,
)

from conftest import gradcheck


class TestConstruction:
    def test_preserves_float64(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_preserves_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_explicit_dtype(self):
        t = Tensor([1, 2, 3], dtype=np.float32)
        assert t.dtype == np.float32

    def test_int_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_shape_size_ndim(self):
        t = Tensor.zeros(2, 3, 4)
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3
        assert t.nbytes == 24 * 4

    def test_factories(self):
        assert (Tensor.ones(2, 2).numpy() == 1).all()
        assert (Tensor.zeros(2, 2).numpy() == 0).all()
        r = Tensor.randn(3, 3, rng=np.random.default_rng(0))
        assert r.shape == (3, 3)

    def test_item_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor.zeros(2, 2).item()

    def test_len(self):
        assert len(Tensor.zeros(5, 2)) == 5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor.zeros(1, requires_grad=True))


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0])

    def test_scalar_radd(self):
        out = 1.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.numpy(), [2.0, 3.0])

    def test_sub_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).numpy(), [2.0])
        np.testing.assert_allclose((1.0 - Tensor([3.0])).numpy(), [-2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([3.0]) * 2.0).numpy(), [6.0])
        np.testing.assert_allclose((Tensor([3.0]) / 2.0).numpy(), [1.5])
        np.testing.assert_allclose((6.0 / Tensor([3.0])).numpy(), [2.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).numpy(), [-2.0])
        np.testing.assert_allclose((Tensor([2.0]) ** 3).numpy(), [8.0])

    def test_matmul_2d(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.numpy(), a @ b)

    def test_matmul_batched(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 2, 3))
        b = rng.standard_normal((5, 3, 4))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)


class TestBroadcastGradients:
    def test_add_broadcast_grad(self, rng):
        b0 = rng.standard_normal((1, 4))
        gradcheck(lambda x: x + Tensor(b0, dtype=np.float64),
                  rng.standard_normal((3, 4)))

    def test_add_broadcast_to_smaller_operand(self, rng):
        big = rng.standard_normal((3, 4))
        gradcheck(lambda x: Tensor(big, dtype=np.float64) + x,
                  rng.standard_normal((1, 4)))

    def test_mul_broadcast_grad(self, rng):
        other = rng.standard_normal((4,))
        gradcheck(lambda x: x * Tensor(other, dtype=np.float64),
                  rng.standard_normal((2, 3, 4)))

    def test_div_grad_both_sides(self, rng):
        denom = rng.standard_normal((3, 3)) + 3.0
        gradcheck(lambda x: x / Tensor(denom, dtype=np.float64),
                  rng.standard_normal((3, 3)))
        numer = rng.standard_normal((3, 3))
        gradcheck(lambda x: Tensor(numer, dtype=np.float64) / x,
                  rng.standard_normal((3, 3)) + 3.0)

    def test_matmul_grad(self, rng):
        b = rng.standard_normal((3, 4))
        gradcheck(lambda x: x @ Tensor(b, dtype=np.float64),
                  rng.standard_normal((2, 3)))

    def test_matmul_grad_rhs(self, rng):
        a = rng.standard_normal((2, 3))
        gradcheck(lambda x: Tensor(a, dtype=np.float64) @ x,
                  rng.standard_normal((3, 4)))


class TestUnaryOps:
    def test_exp_grad(self, rng):
        gradcheck(lambda x: exp(x), rng.standard_normal((3, 3)))

    def test_log_grad(self, rng):
        gradcheck(lambda x: log(x), rng.uniform(0.5, 2.0, (3, 3)))

    def test_sqrt_grad(self, rng):
        gradcheck(lambda x: sqrt(x), rng.uniform(0.5, 2.0, (3, 3)))

    def test_abs_grad(self, rng):
        x = rng.standard_normal((3, 3))
        x[np.abs(x) < 0.2] += 0.5  # stay away from the kink
        gradcheck(lambda t: abs_(t), x)

    def test_pow_grad(self, rng):
        gradcheck(lambda x: x ** 3.0, rng.uniform(0.5, 1.5, (3, 3)))

    def test_clip_values_and_grad(self, rng):
        x = rng.standard_normal((4, 4)) * 2
        out = clip(Tensor(x), -1.0, 1.0)
        np.testing.assert_allclose(out.numpy(), np.clip(x, -1, 1))
        x_safe = x.copy()
        x_safe[np.abs(np.abs(x_safe) - 1.0) < 0.1] = 0.0
        gradcheck(lambda t: clip(t, -1.0, 1.0), x_safe)


class TestBinaryExtrema:
    def test_maximum_values(self, rng):
        a, b = rng.standard_normal((3,)), rng.standard_normal((3,))
        np.testing.assert_allclose(
            maximum(Tensor(a), Tensor(b)).numpy(), np.maximum(a, b))

    def test_minimum_values(self, rng):
        a, b = rng.standard_normal((3,)), rng.standard_normal((3,))
        np.testing.assert_allclose(
            minimum(Tensor(a), Tensor(b)).numpy(), np.minimum(a, b))

    def test_maximum_grad(self, rng):
        b = rng.standard_normal((3, 3))
        a = b + rng.choice([-1.0, 1.0], (3, 3)) * 0.5  # no ties
        gradcheck(lambda x: maximum(x, Tensor(b, dtype=np.float64)), a)

    def test_where_values_and_grad(self, rng):
        cond = rng.random((3, 3)) > 0.5
        b = rng.standard_normal((3, 3))
        out = where(cond, Tensor(b), Tensor(-b))
        np.testing.assert_allclose(out.numpy(), np.where(cond, b, -b))
        gradcheck(lambda x: where(cond, x, Tensor(b, dtype=np.float64)),
                  rng.standard_normal((3, 3)))


class TestAutogradMachinery:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y._ctx is None and not y.requires_grad
        assert is_grad_enabled()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0]))
        (x * 3.0).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph_accumulation(self):
        x = Tensor([2.0], requires_grad=True, dtype=np.float64)
        y = x * 3.0
        z = y + y  # grad wrt x should be 6
        z.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor.zeros(2, 2, requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 1.0).backward()

    def test_retain_grad_on_intermediate(self):
        x = Tensor([1.0], requires_grad=True)
        mid = x * 2.0
        mid.retain_grad()
        (mid * 3.0).sum().backward()
        np.testing.assert_allclose(mid.grad, [3.0])

    def test_detach_severs_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad and y._ctx is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True, dtype=np.float64)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_for_constant_operand(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([2.0])
        (x * c).sum().backward()
        assert c.grad is None
