"""Tests for the 5-step HMMS planner and its MemoryPlan invariants."""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.hmms import HMMSPlanner, MemoryPlan
from repro.models import small_resnet, small_vgg
from repro.profile import P100_NVLINK


@pytest.fixture(scope="module")
def vgg_graph():
    return build_training_graph(small_vgg(rng=np.random.default_rng(0)), 16)


class TestPlannerBasics:
    def test_invalid_scheduler(self):
        with pytest.raises(ValueError):
            HMMSPlanner(scheduler="magic")

    @pytest.mark.parametrize("scheduler", ["none", "layerwise", "hmms"])
    def test_plan_builds(self, vgg_graph, scheduler):
        plan = HMMSPlanner(scheduler=scheduler).plan(vgg_graph)
        assert isinstance(plan, MemoryPlan)
        assert plan.scheduler == scheduler
        assert plan.device_general_peak > 0
        assert plan.device_param_bytes > 0

    def test_none_has_no_transfers(self, vgg_graph):
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        assert not plan.offload_plan.transfers
        assert plan.host_pool_bytes == 0

    def test_host_pool_equals_offloaded_bytes(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        assert plan.host_pool_bytes == sum(
            t.size for t in plan.offload_plan.transfers.values())

    def test_explicit_fraction_overrides_auto(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms", offload_fraction=0.2).plan(vgg_graph)
        assert plan.offload_fraction_used == 0.2

    def test_auto_fraction_is_theoretical_limit(self, vgg_graph):
        from repro.profile import analyze_offloadability
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        expected = analyze_offloadability(vgg_graph).offloadable_fraction
        assert plan.offload_fraction_used == pytest.approx(expected)

    def test_fits(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        assert plan.fits(plan.device_peak)
        assert not plan.fits(plan.device_peak - 1)


class TestScheduleInvariants:
    @pytest.fixture(params=["none", "layerwise", "hmms"])
    def plan(self, vgg_graph, request):
        return HMMSPlanner(scheduler=request.param).plan(vgg_graph)

    def test_every_general_tso_allocated_and_freed_once(self, plan):
        allocs, frees = [], []
        for entry in plan.schedule:
            allocs.extend(entry.allocs_before)
            allocs.extend(entry.prefetch_allocs_before)
            frees.extend(entry.offload_syncs_after)
            frees.extend(entry.frees_after)
        general = [t.id for t in plan.assignment.tsos.values()
                   if t.pool == "device_general"]
        assert sorted(allocs) == sorted(
            general + [t for t in plan.offload_plan.transfers])
        assert sorted(frees) == sorted(allocs)

    def test_alloc_precedes_free(self, plan):
        alloc_at, free_at = {}, {}
        for entry in plan.schedule:
            for tso in entry.allocs_before:
                alloc_at.setdefault(tso, entry.op_index)
            for tso in entry.offload_syncs_after + entry.frees_after:
                free_at[tso] = entry.op_index
        for tso, start in alloc_at.items():
            assert free_at[tso] >= start

    def test_workspace_recorded(self, plan):
        graph_ws = [op.workspace_bytes for op in plan.graph.ops]
        plan_ws = [entry.workspace_bytes for entry in plan.schedule]
        assert graph_ws == plan_ws


class TestMemoryEffects:
    """Peak-memory effects are asserted on workspace-free graphs: conv
    workspace is a large batch-dependent transient that both schedulers pay
    identically, and at miniature scale it swamps the saved-activation
    footprint the schedulers actually differ on."""

    @pytest.fixture(scope="class")
    def clean_graph(self):
        from repro.graph import build_forward_graph, append_backward_graph
        graph = build_forward_graph(
            small_vgg(rng=np.random.default_rng(0)), 64, workspace_cap=0)
        return append_backward_graph(graph)

    def test_offloading_reduces_peak(self, clean_graph):
        baseline = HMMSPlanner(scheduler="none").plan(clean_graph)
        hmms = HMMSPlanner(scheduler="hmms").plan(clean_graph)
        assert hmms.device_general_peak < baseline.device_general_peak

    def test_optimizations_reduce_total_storage(self, clean_graph):
        with_opts = HMMSPlanner(scheduler="none").plan(clean_graph)
        without = HMMSPlanner(scheduler="none", inplace_relu=False,
                              share_summation=False).plan(clean_graph)
        assert with_opts.assignment.total_bytes("device_general") < \
            without.assignment.total_bytes("device_general")
        assert len(with_opts.assignment.tsos) < len(without.assignment.tsos)

    def test_workspace_contributes_to_peak(self):
        model = small_vgg(rng=np.random.default_rng(0))
        with_ws = HMMSPlanner(scheduler="none").plan(
            build_training_graph(model, 64))
        from repro.graph import build_forward_graph, append_backward_graph
        without_ws = HMMSPlanner(scheduler="none").plan(
            append_backward_graph(build_forward_graph(model, 64,
                                                      workspace_cap=0)))
        assert with_ws.device_general_peak > without_ws.device_general_peak

    def test_first_fit_beats_bump(self, vgg_graph):
        first_fit = HMMSPlanner(scheduler="hmms", first_fit=True).plan(vgg_graph)
        bump = HMMSPlanner(scheduler="hmms", first_fit=False).plan(vgg_graph)
        assert first_fit.device_general_peak < bump.device_general_peak

    def test_peak_scales_with_batch(self):
        rng = np.random.default_rng(0)
        model = small_vgg(rng=rng)
        small = HMMSPlanner(scheduler="none").plan(
            build_training_graph(model, 8))
        large = HMMSPlanner(scheduler="none").plan(
            build_training_graph(model, 32))
        assert large.device_general_peak > 2 * small.device_general_peak

    def test_split_plus_hmms_beats_hmms_alone(self):
        """The paper's central synergy at a miniature scale."""
        rng = np.random.default_rng(0)
        base = small_vgg(rng=rng)
        split = to_split_cnn(base, depth=0.75, num_splits=(2, 2))
        plain_plan = HMMSPlanner(scheduler="hmms").plan(
            build_training_graph(base, 64))
        split_plan = HMMSPlanner(scheduler="hmms").plan(
            build_training_graph(split, 64))
        assert split_plan.device_general_peak < plain_plan.device_general_peak

    def test_param_pool_independent_of_scheduler(self, vgg_graph):
        peaks = {HMMSPlanner(scheduler=s).plan(vgg_graph).device_param_bytes
                 for s in ("none", "layerwise", "hmms")}
        assert len(peaks) == 1


class TestHostPool:
    def test_none_scheduler_needs_no_host_pool(self, vgg_graph):
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        assert plan.host_pool_bytes == 0
        assert plan.host_pool_peak == 0

    def test_host_peak_bounded_by_static(self, vgg_graph):
        for scheduler in ("layerwise", "hmms"):
            plan = HMMSPlanner(scheduler=scheduler).plan(vgg_graph)
            assert plan.host_pool_peak <= plan.host_pool_bytes

    def test_host_peak_equals_static_for_fwd_bwd_plans(self, vgg_graph):
        """Every offload happens in forward and every prefetch consumes in
        backward, so all host slots coexist: reuse cannot help within one
        training step (it would across pipelined steps)."""
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        assert plan.host_pool_peak == plan.host_pool_bytes
