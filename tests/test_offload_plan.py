"""Tests for Algorithm-1 offload planning, prefetch planning, and the
vDNN-style layer-wise baseline."""

import numpy as np
import pytest

from repro.graph import build_training_graph, compute_lifetimes
from repro.hmms import assign_storage, plan_layerwise, plan_offload, plan_prefetch
from repro.hmms.offload import select_offload_candidates
from repro.models import small_resnet, small_vgg
from repro.profile import CostModel, P100_NVLINK


@pytest.fixture(scope="module")
def planned():
    graph = build_training_graph(small_vgg(rng=np.random.default_rng(0)), 16)
    assignment = assign_storage(graph)
    lifetimes = compute_lifetimes(graph)
    cost_model = CostModel()
    return graph, assignment, lifetimes, cost_model


class TestCandidates:
    def test_candidates_cross_boundary(self, planned):
        graph, assignment, lifetimes, _ = planned
        for tso in select_offload_candidates(graph, assignment, lifetimes):
            assert any(
                lifetimes[t].crosses_boundary() for t in tso.tensor_ids
            )

    def test_candidates_in_general_pool(self, planned):
        graph, assignment, lifetimes, _ = planned
        for tso in select_offload_candidates(graph, assignment, lifetimes):
            assert tso.pool == "device_general"

    def test_candidates_unique(self, planned):
        graph, assignment, lifetimes, _ = planned
        ids = [t.id for t in
               select_offload_candidates(graph, assignment, lifetimes)]
        assert len(ids) == len(set(ids))


class TestAlgorithm1:
    def test_full_fraction_offloads_everything_drainable(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK, fraction_cap=1.0)
        assert plan.offloaded_bytes > 0
        assert plan.offloaded_bytes <= plan.candidate_bytes

    def test_fraction_cap_respected(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        for cap in (0.25, 0.5, 0.75):
            plan = plan_offload(graph, assignment, lifetimes, cost_model,
                                P100_NVLINK, fraction_cap=cap)
            assert plan.offloaded_bytes <= cap * plan.candidate_bytes + 1

    def test_zero_cap_offloads_nothing(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK, fraction_cap=0.0)
        assert not plan.transfers

    def test_sync_never_before_start(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK)
        for transfer in plan.transfers.values():
            assert transfer.offload_sync >= transfer.offload_start >= 0

    def test_offload_starts_after_last_forward_touch(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK)
        for tso_id, transfer in plan.transfers.items():
            for tensor_id in assignment.tensors_of(tso_id):
                last_forward = lifetimes[tensor_id].last_forward_use
                if last_forward is not None:
                    assert transfer.offload_start >= last_forward

    def test_grouped_mode_syncs_at_nonnegative_balance(self, planned):
        """Paper-literal mode: replaying the plan's balance ledger must show
        a non-negative balance at every group sync point."""
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK, grouped_sync=True)
        starts = {}
        for transfer in plan.transfers.values():
            starts.setdefault(transfer.offload_start, []).append(transfer)
        balance = 0.0
        bandwidth = P100_NVLINK.nvlink_bandwidth
        sync_points = sorted(set(t.offload_sync
                                 for t in plan.transfers.values()))
        forward = graph.forward_ops()
        for index, op in enumerate(forward):
            for transfer in starts.get(index, ()):  # losses
                balance -= transfer.size
            balance += cost_model.cost(graph, op).seconds * bandwidth
            if index in sync_points and index != len(forward) - 1:
                assert balance >= 0.0
                balance = 0.0

    def test_fifo_mode_frees_earlier_than_grouped(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        fifo = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK, grouped_sync=False)
        grouped = plan_offload(graph, assignment, lifetimes, cost_model,
                               P100_NVLINK, grouped_sync=True)
        common = set(fifo.transfers) & set(grouped.transfers)
        assert common
        assert sum(fifo.transfers[t].offload_sync for t in common) <= \
            sum(grouped.transfers[t].offload_sync for t in common)

    def test_invalid_fraction(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        with pytest.raises(ValueError):
            plan_offload(graph, assignment, lifetimes, cost_model,
                         P100_NVLINK, fraction_cap=1.5)

    def test_invalid_horizon(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        with pytest.raises(ValueError):
            plan_offload(graph, assignment, lifetimes, cost_model,
                         P100_NVLINK, sync_horizon=0)


class TestPrefetch:
    @pytest.fixture()
    def full_plan(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK)
        return plan_prefetch(graph, assignment, lifetimes, cost_model,
                             P100_NVLINK, plan)

    def test_every_offload_gets_prefetch(self, planned, full_plan):
        for transfer in full_plan.transfers.values():
            assert transfer.prefetch_start is not None
            assert transfer.prefetch_sync is not None

    def test_prefetch_completes_before_use(self, planned, full_plan):
        graph, assignment, lifetimes, _ = planned
        for tso_id, transfer in full_plan.transfers.items():
            first_use = min(
                lifetimes[t].first_backward_use
                for t in assignment.tensors_of(tso_id)
                if lifetimes[t].first_backward_use is not None
            )
            assert transfer.prefetch_sync == first_use
            assert transfer.prefetch_start <= transfer.prefetch_sync

    def test_prefetch_after_offload_sync(self, planned, full_plan):
        for transfer in full_plan.transfers.values():
            assert transfer.prefetch_start > transfer.offload_sync

    def test_prefetch_in_backward_phase(self, planned, full_plan):
        graph, _, lifetimes, _ = planned
        boundary = next(iter(lifetimes.values())).boundary
        for transfer in full_plan.transfers.values():
            assert transfer.prefetch_start > boundary

    def test_grouped_prefetch_mode(self, planned):
        graph, assignment, lifetimes, cost_model = planned
        plan = plan_offload(graph, assignment, lifetimes, cost_model,
                            P100_NVLINK, grouped_sync=True)
        plan = plan_prefetch(graph, assignment, lifetimes, cost_model,
                             P100_NVLINK, plan, grouped_sync=True)
        for transfer in plan.transfers.values():
            assert transfer.prefetch_start is not None
            assert transfer.prefetch_start <= transfer.prefetch_sync


class TestLayerwise:
    def test_eager_sync_same_op(self, planned):
        graph, assignment, lifetimes, _ = planned
        plan = plan_layerwise(graph, assignment, lifetimes)
        for transfer in plan.transfers.values():
            assert transfer.offload_sync == transfer.offload_start

    def test_prefetch_one_op_ahead(self, planned):
        graph, _, lifetimes, _ = planned
        assignment = assign_storage(graph)
        plan = plan_layerwise(graph, assignment, lifetimes)
        for transfer in plan.transfers.values():
            assert transfer.prefetch_sync - transfer.prefetch_start <= 1

    def test_fraction_cap(self, planned):
        graph, assignment, lifetimes, _ = planned
        plan = plan_layerwise(graph, assignment, lifetimes, fraction_cap=0.3)
        assert plan.offloaded_bytes <= 0.3 * plan.candidate_bytes + 1

    def test_conv_only_filter(self, planned):
        graph, assignment, lifetimes, _ = planned
        everything = plan_layerwise(graph, assignment, lifetimes)
        conv_only = plan_layerwise(graph, assignment, lifetimes,
                                   conv_only=True)
        assert set(conv_only.transfers) <= set(everything.transfers)
        for tso_id in conv_only.transfers:
            consumers = {
                graph.op_by_id(c).op_type
                for t in assignment.tensors_of(tso_id)
                for c in graph.tensor(t).consumers
                if graph.op_by_id(c).phase == "forward"
            }
            assert "conv2d" in consumers

    def test_invalid_fraction(self, planned):
        graph, assignment, lifetimes, _ = planned
        with pytest.raises(ValueError):
            plan_layerwise(graph, assignment, lifetimes, fraction_cap=-0.1)


from hypothesis import given, settings
from hypothesis import strategies as st


@given(fraction=st.floats(0.0, 1.0), horizon=st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_plan_invariants_property(planned_module_scope, fraction, horizon):
    """Any (fraction, horizon) combination yields a structurally valid plan
    whose replay passes the simulator's safety checks."""
    graph, assignment, lifetimes, cost_model = planned_module_scope
    plan = plan_offload(graph, assignment, lifetimes, cost_model,
                        P100_NVLINK, fraction_cap=fraction,
                        sync_horizon=horizon)
    plan = plan_prefetch(graph, assignment, lifetimes, cost_model,
                         P100_NVLINK, plan)
    boundary = next(iter(lifetimes.values())).boundary
    assert plan.offloaded_bytes <= fraction * plan.candidate_bytes + 1
    for transfer in plan.transfers.values():
        assert 0 <= transfer.offload_start <= transfer.offload_sync <= boundary
        assert boundary < transfer.prefetch_start <= transfer.prefetch_sync


@pytest.fixture(scope="module")
def planned_module_scope():
    graph = build_training_graph(small_vgg(rng=np.random.default_rng(0)), 16)
    assignment = assign_storage(graph)
    lifetimes = compute_lifetimes(graph)
    return graph, assignment, lifetimes, CostModel()
