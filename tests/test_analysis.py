"""Tests for repro.analysis: lint, race detector, determinism audit.

Three layers of coverage:

- the **zoo matrix**: every registered model × {unsplit, 2x2 split} ×
  {serial, 4 workers} × {training, inference} must lint completely
  clean — the analyzer is only trustworthy on dirty graphs if it stays
  quiet on known-good ones;
- **mutation tests**: each diagnostic code is tripped by exactly the
  corruption it documents, pinning code assignments;
- the **framework**: diagnostics, report emitters, preflight wiring.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    ALL_PASSES, CODES, AnalysisReport, Diagnostic, GraphAnalysisError,
    analyze_graph, ancestor_masks,
)
from repro.core import to_split_cnn
from repro.graph import build_inference_graph, build_training_graph
from repro.graph.backward import prune_dead_gradients
from repro.graph.checkpoint import build_checkpointed_training_graph
from repro.graph.executor import GraphExecutor
from repro.graph.ir import Graph
from repro.hmms.storage import assign_storage
from repro.models import MODEL_REGISTRY, ConvClassifier, build_model
from repro.nn import Conv2d, Dropout, Linear, ReLU, Sequential, init


def _zoo_graph(name, split=False, inference=False, batch=2):
    with init.fast_init():
        model = build_model(name)
        if split:
            model = to_split_cnn(model, depth=0.5, num_splits=(2, 2))
    if inference:
        return build_inference_graph(model, batch)
    return build_training_graph(model, batch)


def _dropout_graph():
    rng = np.random.default_rng(0)
    features = Sequential(
        Conv2d(3, 4, kernel_size=3, padding=1, rng=rng), ReLU())
    classifier = Sequential(
        Linear(4 * 8 * 8, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 8, rng=rng), ReLU(), Dropout(0.5),
        Linear(8, 4, rng=rng),
    )
    model = ConvClassifier(features, classifier, name="dropout-test",
                           input_size=8)
    return build_training_graph(model, 2)


def _branch_graph():
    """x feeds two parallel relu branches merged by an add."""
    graph = Graph("branches")
    x = graph.add_tensor("x", (2, 8), kind="input")
    a = graph.add_tensor("a", (2, 8))
    b = graph.add_tensor("b", (2, 8))
    c = graph.add_tensor("c", (2, 8))
    out = graph.add_tensor("logits", (2, 8))
    graph.add_op("branch-a", "relu", [x], [a])
    graph.add_op("branch-b", "relu", [x], [b])
    graph.add_op("merge", "add", [a, b], [c])
    graph.add_op("head", "relu", [c], [out])
    graph.validate()
    return graph


# ----------------------------------------------------------------------
# Zoo matrix: every model/split/worker/mode combination lints clean
# ----------------------------------------------------------------------
class TestZooMatrix:
    @pytest.mark.parametrize("split", [False, True])
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_training_graphs_lint_clean(self, name, split):
        graph = _zoo_graph(name, split=split)
        for workers in (1, 4):
            report = analyze_graph(graph, workers=workers)
            assert report.ok and not report.findings, report.render()

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_inference_graphs_lint_clean(self, name):
        report = analyze_graph(_zoo_graph(name, inference=True),
                               workers=4, inference=True)
        assert report.ok and not report.findings, report.render()

    def test_checkpointed_graph_lints_clean(self):
        with init.fast_init():
            model = build_model("vgg11")
        graph = build_checkpointed_training_graph(model, 2)
        report = analyze_graph(graph, workers=4)
        assert not report.findings, report.render()

    def test_dropout_graph_lints_clean(self):
        report = analyze_graph(_dropout_graph(), workers=4)
        assert not report.findings, report.render()


# ----------------------------------------------------------------------
# Regression tests for the real findings the analyzer surfaced
# ----------------------------------------------------------------------
class TestDeadGradientPruning:
    """SCA002 findings on the original zoo: the first layer's bwd_data
    (and split graphs' split_bwd chain) produced a ``grad(input)`` that
    nothing consumed.  ``prune_dead_gradients`` now removes them."""

    @pytest.mark.parametrize("split", [False, True])
    def test_no_input_gradient_is_materialized(self, split):
        graph = _zoo_graph("small_vgg", split=split)
        assert not analyze_graph(graph).by_code("SCA002")
        input_tensor = next(t for t in graph.tensors.values()
                            if t.kind == "input")
        names = {t.name for t in graph.tensors.values()}
        assert f"grad({input_tensor.name})" not in names

    def test_split_bwd_chain_pruned_transitively(self):
        # With the split at the input, the whole patch input-gradient
        # chain (per-patch bwd_data -> grad_acc -> split_bwd) is dead.
        graph = _zoo_graph("small_vgg", split=True)
        assert not any(op.op_type == "split_bwd" for op in graph.ops)

    def test_checkpoint_has_no_dead_recompute_clones(self):
        # The recomputed clone of each segment's last op went unread.
        with init.fast_init():
            model = build_model("vgg11")
        graph = build_checkpointed_training_graph(model, 2, num_segments=3)
        assert not analyze_graph(graph).by_code("SCA002")

    def test_prune_runs_to_fixpoint(self):
        graph = _branch_graph()
        logits = next(t for t in graph.tensors.values()
                      if t.name == "logits")
        g1 = graph.add_tensor("g1", logits.shape, kind="gradient_act")
        g2 = graph.add_tensor("g2", logits.shape, kind="gradient_act")
        op1 = graph.add_op("dead-1", "relu", [logits], [g1],
                           phase="backward")
        graph.add_op("dead-2", "relu", [g1], [g2], phase="backward")
        # dead-2 is dead immediately; dead-1 only once dead-2 is gone.
        assert prune_dead_gradients(graph) == 2
        assert [op.name for op in graph.ops] == \
            ["branch-a", "branch-b", "merge", "head"]
        assert op1.id not in logits.consumers
        assert g1.id not in graph.tensors and g2.id not in graph.tensors

    def test_parameter_gradients_never_pruned(self):
        graph = _zoo_graph("small_vgg")
        grads = [t for t in graph.tensors.values() if t.kind == "gradient"]
        assert grads
        assert prune_dead_gradients(graph) == 0


# ----------------------------------------------------------------------
# Mutation tests: one corruption per diagnostic code
# ----------------------------------------------------------------------
class TestLintMutations:
    def test_sca001_shape_mismatch(self):
        graph = _zoo_graph("small_vgg")
        conv = next(op for op in graph.forward_ops()
                    if op.op_type == "conv2d")
        graph.tensors[conv.outputs[0]].shape = (1, 2, 3)
        report = analyze_graph(graph, passes=("graph-lint",))
        assert report.by_code("SCA001") and not report.ok
        with pytest.raises(GraphAnalysisError):
            report.raise_if_failed()

    def test_sca002_dead_op(self):
        graph = _zoo_graph("small_vgg")
        source = graph.tensors[graph.forward_ops()[0].outputs[0]]
        scratch = graph.add_tensor("scratch", source.shape)
        graph.add_op("scratch-relu", "relu", [source], [scratch])
        report = analyze_graph(graph, passes=("graph-lint",))
        [finding] = report.by_code("SCA002")
        assert "scratch-relu" in finding.message
        assert report.ok          # warnings don't fail the analysis

    def test_sca003_orphan_tensor(self):
        graph = _zoo_graph("small_vgg")
        orphan = graph.add_tensor("orphan", (4, 4))
        report = analyze_graph(graph, passes=("graph-lint",))
        [finding] = report.by_code("SCA003")
        assert finding.tensor_id == orphan.id

    def test_sca004_saved_without_backward(self):
        graph = _zoo_graph("small_vgg")
        saver = next(op for op in graph.forward_ops() if op.saved)
        target = next(op.id for op in graph.forward_ops()
                      if op.id != saver.id)
        for op in graph.backward_ops():
            if op.forward_of == saver.id:
                op.forward_of = target
        report = analyze_graph(graph, passes=("graph-lint",))
        assert any(finding.op_ids == (saver.id,)
                   for finding in report.by_code("SCA004"))

    def test_sca005_dangling_forward_of(self):
        graph = _zoo_graph("small_vgg")
        graph.backward_ops()[0].forward_of = 10_000
        report = analyze_graph(graph, passes=("graph-lint",))
        assert report.by_code("SCA005") and not report.ok

    def test_sca005_forward_of_must_point_at_forward_op(self):
        graph = _zoo_graph("small_vgg")
        backward = graph.backward_ops()
        backward[-1].forward_of = backward[0].id
        report = analyze_graph(graph, passes=("graph-lint",))
        assert report.by_code("SCA005")

    def test_sca006_training_structure_in_inference_graph(self):
        graph = _zoo_graph("small_vgg")       # a training graph...
        report = analyze_graph(graph, passes=("graph-lint",),
                               inference=True)  # ...declared as inference
        codes = {finding.code for finding in report.findings}
        assert codes == {"SCA006"} and not report.ok

    def test_sca007_use_before_def(self):
        graph = _zoo_graph("small_vgg")
        graph.ops.insert(0, graph.ops.pop())
        report = analyze_graph(graph, passes=("graph-lint",))
        assert report.by_code("SCA007") and not report.ok


class TestRaceMutations:
    def test_sca101_injected_shared_tso_names_pair_and_tso(self):
        """The acceptance scenario: fake a shared TSO between two
        DAG-unordered ops of a real split model; the witness must name
        the op pair and the TSO."""
        graph = _zoo_graph("small_vgg", split=True)
        assignment = assign_storage(graph)
        masks = ancestor_masks(graph)
        position = graph.op_positions()
        convs = [op for op in graph.forward_ops()
                 if op.op_type == "conv2d"]
        pair = next(
            ((a, b) for i, a in enumerate(convs) for b in convs[i + 1:]
             if not (masks[position[b.id]] >> position[a.id]) & 1
             and not (masks[position[a.id]] >> position[b.id]) & 1),
            None)
        assert pair, "split graph should have unordered patch convs"
        a, b = pair
        keep = assignment.tso_of[a.outputs[0]]
        absorb = assignment.tso_of[b.outputs[0]]
        tso = assignment.tsos[keep]
        for tensor_id in list(assignment.tsos[absorb].tensor_ids):
            tso.add_tensor(tensor_id, graph.tensor(tensor_id).nbytes)
            assignment.tso_of[tensor_id] = keep
        del assignment.tsos[absorb]

        report = analyze_graph(graph, assignment=assignment, workers=4,
                               passes=("concurrency",))
        races = report.by_code("SCA101")
        assert races and not report.ok
        witness = next(d for d in races if set(d.op_ids) == {a.id, b.id})
        assert witness.tso_id == keep
        assert str(a.id) in witness.message and str(b.id) in witness.message
        # One worker serializes every pair: same plan, no hazard.
        serial = analyze_graph(graph, assignment=assignment, workers=1,
                               passes=("concurrency",))
        assert not serial.findings

    def test_sca102_read_write_on_shared_tso(self):
        graph = _branch_graph()
        assignment = assign_storage(graph)
        x = next(t for t in graph.tensors.values() if t.name == "x")
        a = next(t for t in graph.tensors.values() if t.name == "a")
        # Map branch-a's output onto the TSO branch-b reads from.
        keep = assignment.tso_of[x.id]
        assignment.tsos[keep].add_tensor(a.id, a.nbytes)
        del assignment.tsos[assignment.tso_of[a.id]]
        assignment.tso_of[a.id] = keep

        report = analyze_graph(graph, assignment=assignment, workers=4,
                               passes=("concurrency",))
        [finding] = report.by_code("SCA102")
        branch_a = next(op for op in graph.ops if op.name == "branch-a")
        branch_b = next(op for op in graph.ops if op.name == "branch-b")
        assert set(finding.op_ids) == {branch_a.id, branch_b.id}
        assert finding.tso_id == keep
        assert not report.by_code("SCA101")

    @pytest.mark.parametrize("workers", [1, 4])
    def test_sca103_unaccounted_reader(self, workers):
        graph = _branch_graph()
        x = next(t for t in graph.tensors.values() if t.name == "x")
        branch_b = next(op for op in graph.ops if op.name == "branch-b")
        # Corrupt the refcount bookkeeping: branch-b still reads x but
        # is no longer counted, so the free plan drops x after branch-a
        # alone retires — before (or while) branch-b reads it.
        x.consumers.remove(branch_b.id)
        report = analyze_graph(graph, workers=workers,
                               passes=("concurrency",))
        [finding] = report.by_code("SCA103")
        assert finding.op_ids == (branch_b.id,)
        assert finding.tensor_id == x.id

    def test_clean_branch_graph_has_no_hazards(self):
        report = analyze_graph(_branch_graph(), workers=4)
        assert not report.findings, report.render()


class TestDeterminismMutations:
    def test_sca201_broken_accumulation_chain(self):
        graph = _zoo_graph("small_vgg", split=True)
        acc = next(op for op in graph.ops
                   if op.op_type == "grad_acc"
                   and graph.tensor(op.outputs[0]).kind == "gradient")
        acc.op_type = "add"          # same shapes, no longer a frozen merge
        report = analyze_graph(graph, passes=("determinism",))
        assert report.by_code("SCA201") and not report.ok

    def test_sca201_reduction_tree(self):
        graph = _zoo_graph("small_vgg", split=True)
        acc = next(op for op in graph.ops
                   if op.op_type == "grad_acc"
                   and graph.tensor(op.outputs[0]).kind == "gradient")
        contribution = graph.tensor(acc.inputs[0])
        other = graph.tensor(acc.inputs[1])
        dup = graph.add_tensor(graph.tensor(acc.outputs[0]).name,
                               contribution.shape, kind="gradient")
        graph.add_op("dup-acc", "grad_acc", [contribution, other], [dup],
                     phase="backward", forward_of=acc.forward_of)
        report = analyze_graph(graph, passes=("determinism",))
        findings = report.by_code("SCA201")
        assert any(f.tensor_id == contribution.id for f in findings)

    def test_sca202_missing_seed(self):
        graph = _dropout_graph()
        dropout = next(op for op in graph.forward_ops()
                       if op.op_type == "dropout")
        del dropout.attrs["seed"]
        report = analyze_graph(graph, passes=("determinism",))
        [finding] = report.by_code("SCA202")
        assert finding.op_ids == (dropout.id,)

    def test_sca202_duplicate_seed(self):
        graph = _dropout_graph()
        dropouts = [op for op in graph.forward_ops()
                    if op.op_type == "dropout"]
        assert len(dropouts) >= 2
        dropouts[1].attrs["seed"] = dropouts[0].attrs["seed"]
        report = analyze_graph(graph, passes=("determinism",))
        [finding] = report.by_code("SCA202")
        assert set(finding.op_ids) == {dropouts[0].id, dropouts[1].id}


# ----------------------------------------------------------------------
# Happens-before machinery
# ----------------------------------------------------------------------
class TestAncestorMasks:
    def test_branches_are_unordered_head_sees_all(self):
        graph = _branch_graph()
        masks = ancestor_masks(graph)
        # positions: 0 branch-a, 1 branch-b, 2 merge, 3 head
        assert not (masks[1] >> 0) & 1 and not (masks[0] >> 1) & 1
        assert masks[2] == 0b11
        assert masks[3] == 0b111

    def test_chain_is_totally_ordered(self):
        graph = Graph("chain")
        prev = graph.add_tensor("x", (2, 4), kind="input")
        for index in range(4):
            nxt = graph.add_tensor(f"t{index}", (2, 4))
            graph.add_op(f"relu{index}", "relu", [prev], [nxt])
            prev = nxt
        masks = ancestor_masks(graph)
        for pos in range(4):
            assert masks[pos] == (1 << pos) - 1


# ----------------------------------------------------------------------
# Framework: diagnostics, report emitters, entry points
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="SCA999"):
            Diagnostic("SCA999", "nope")

    def test_severity_defaults_from_spec(self):
        finding = Diagnostic("SCA002", "boom", op_ids=(3,))
        assert finding.severity == "warning"
        rendered = str(finding)
        assert "SCA002" in rendered and "dead-op" in rendered
        assert "op 3" in rendered

    def test_every_code_has_pass_and_description(self):
        assert len(CODES) >= 12
        for spec in CODES.values():
            assert spec.pass_name in ALL_PASSES
            assert spec.description and spec.title

    def test_report_ok_ignores_warnings(self):
        report = AnalysisReport(
            graph_name="g", num_ops=1, num_tensors=1, workers=4,
            passes=ALL_PASSES,
            findings=[Diagnostic("SCA002", "warn only")])
        assert report.ok and report.warnings and not report.errors
        assert report.raise_if_failed() is report

    def test_error_report_raises_with_attached_report(self):
        report = AnalysisReport(
            graph_name="g", num_ops=1, num_tensors=1, workers=4,
            passes=ALL_PASSES,
            findings=[Diagnostic("SCA101", "race", op_ids=(1, 2),
                                 tso_id=7)])
        with pytest.raises(GraphAnalysisError) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.report is report
        assert "SCA101" in str(excinfo.value)


class TestEmitters:
    def _report(self):
        return AnalysisReport(
            graph_name="demo", num_ops=5, num_tensors=9, workers=4,
            passes=ALL_PASSES,
            findings=[
                Diagnostic("SCA101", "racy", op_ids=(1, 2), tso_id=3),
                Diagnostic("SCA002", "dead", op_ids=(4,)),
            ])

    def test_render(self):
        text = self._report().render()
        assert "1 errors, 1 warnings" in text
        assert "SCA101" in text and "TSO 3" in text

    def test_render_clean(self):
        report = AnalysisReport(graph_name="demo", num_ops=1,
                                num_tensors=1, workers=1,
                                passes=ALL_PASSES)
        assert "clean" in report.render()
        assert "serial" in report.render()

    def test_json_payload(self):
        payload = json.loads(self._report().to_json())
        assert payload["ok"] is False
        assert [f["code"] for f in payload["findings"]] == \
            ["SCA101", "SCA002"]
        assert payload["findings"][0]["tso_id"] == 3
        assert payload["findings"][0]["pass"] == "concurrency"

    def test_sarif_log(self):
        log = self._report().to_sarif()
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-sca"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(CODES)
        result = run["results"][0]
        assert result["ruleId"] == "SCA101"
        assert result["level"] == "error"
        names = {loc["name"] for loc
                 in result["locations"][0]["logicalLocations"]}
        assert names == {"op:1", "op:2", "tso:3"}


class TestEntryPoints:
    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            analyze_graph(_branch_graph(), passes=("bogus",))

    def test_pass_selection_limits_findings(self):
        graph = _zoo_graph("small_vgg")
        graph.add_tensor("orphan", (2, 2))
        lint_only = analyze_graph(graph, passes=("graph-lint",))
        races_only = analyze_graph(graph, passes=("concurrency",))
        assert lint_only.by_code("SCA003")
        assert not races_only.findings
        assert races_only.passes == ("concurrency",)

    def test_preflight_accepts_clean_graph(self):
        with init.fast_init():
            model = build_model("small_vgg")
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        executor = GraphExecutor(graph, params, workers=4, preflight=True)
        assert executor.workers == 4

    def test_preflight_rejects_broken_graph(self):
        with init.fast_init():
            model = build_model("small_vgg")
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        conv = next(op for op in graph.forward_ops()
                    if op.op_type == "conv2d")
        graph.tensors[conv.outputs[0]].shape = (9, 9, 9, 9)
        with pytest.raises(GraphAnalysisError, match="SCA001"):
            GraphExecutor(graph, params, workers=4, preflight=True)
