"""Unit tests for reduction primitives."""

import numpy as np
import pytest

from repro.tensor import Tensor, max_, mean, min_, sum_, var

from conftest import gradcheck


class TestValues:
    def test_sum_all(self, rng):
        x = rng.standard_normal((3, 4))
        assert sum_(Tensor(x)).item() == pytest.approx(x.sum())

    def test_sum_axis_keepdims(self, rng):
        x = rng.standard_normal((3, 4, 5))
        out = sum_(Tensor(x), axis=(0, 2), keepdims=True)
        np.testing.assert_allclose(out.numpy(), x.sum(axis=(0, 2), keepdims=True),
                                   rtol=1e-6)

    def test_mean_axis(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(mean(Tensor(x), axis=1).numpy(),
                                   x.mean(axis=1), rtol=1e-6)

    def test_max_min(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(max_(Tensor(x), axis=0).numpy(), x.max(axis=0))
        np.testing.assert_allclose(min_(Tensor(x), axis=1).numpy(), x.min(axis=1))

    def test_negative_axis(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(sum_(Tensor(x), axis=-1).numpy(),
                                   x.sum(axis=-1), rtol=1e-6)

    def test_var_matches_numpy(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(var(Tensor(x), axis=0).numpy(),
                                   x.var(axis=0), rtol=1e-5)


class TestGradients:
    def test_sum_grad(self, rng):
        gradcheck(lambda t: sum_(t, axis=1), rng.standard_normal((3, 4)))

    def test_sum_all_grad(self, rng):
        gradcheck(lambda t: sum_(t), rng.standard_normal((3, 4)))

    def test_mean_grad(self, rng):
        gradcheck(lambda t: mean(t, axis=(0, 2)), rng.standard_normal((2, 3, 4)))

    def test_mean_keepdims_grad(self, rng):
        gradcheck(lambda t: mean(t, axis=1, keepdims=True),
                  rng.standard_normal((3, 4)))

    def test_max_grad_no_ties(self, rng):
        x = rng.permutation(12).astype(np.float64).reshape(3, 4)
        gradcheck(lambda t: max_(t, axis=1), x)

    def test_min_grad_no_ties(self, rng):
        x = rng.permutation(12).astype(np.float64).reshape(3, 4)
        gradcheck(lambda t: min_(t, axis=0), x)

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True,
                   dtype=np.float64)
        max_(x, axis=1).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_var_grad(self, rng):
        gradcheck(lambda t: var(t, axis=1), rng.standard_normal((3, 5)),
                  rtol=1e-3, atol=1e-5)
