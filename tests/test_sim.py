"""Tests for the event-driven GPU simulator and timeline rendering."""

import numpy as np
import pytest

from repro.graph import build_training_graph
from repro.hmms import HMMSPlanner
from repro.hmms.planner import OpSchedule
from repro.models import small_resnet, small_vgg
from repro.profile import CostModel, P100_NVLINK
from repro.sim import (
    GPUSimulator, SimulationError, render_timeline, stall_profile,
    utilization_summary,
)


@pytest.fixture(scope="module")
def vgg_graph():
    return build_training_graph(small_vgg(rng=np.random.default_rng(0)), 16)


def run(graph, scheduler, **planner_kwargs):
    plan = HMMSPlanner(scheduler=scheduler, **planner_kwargs).plan(graph)
    return GPUSimulator().run(plan), plan


class TestBaseline:
    def test_no_offload_no_stalls(self, vgg_graph):
        result, _ = run(vgg_graph, "none")
        assert result.stall_time == 0.0
        assert result.transfer_time == 0.0
        assert result.offloaded_bytes == 0

    def test_total_equals_kernel_time(self, vgg_graph):
        result, plan = run(vgg_graph, "none")
        expected = CostModel().total_time(vgg_graph)
        assert result.total_time == pytest.approx(expected)

    def test_throughput(self, vgg_graph):
        result, _ = run(vgg_graph, "none")
        assert result.throughput(16) == pytest.approx(16 / result.total_time)

    def test_events_cover_all_ops(self, vgg_graph):
        result, _ = run(vgg_graph, "none")
        op_events = [e for e in result.events if e.kind == "op"]
        costed = [op for op in vgg_graph.ops
                  if CostModel().cost(vgg_graph, op).seconds > 0]
        assert len(op_events) == len(costed)


class TestOffloadReplay:
    def test_hmms_transfers_happen(self, vgg_graph):
        result, plan = run(vgg_graph, "hmms")
        assert result.offloaded_bytes == plan.offload_plan.offloaded_bytes
        assert result.transfer_time > 0

    def test_hmms_beats_layerwise(self, vgg_graph):
        hmms, _ = run(vgg_graph, "hmms")
        layerwise, _ = run(vgg_graph, "layerwise")
        assert hmms.total_time <= layerwise.total_time

    def test_layerwise_stalls_on_memory_bound_layers(self, vgg_graph):
        result, _ = run(vgg_graph, "layerwise")
        assert result.stall_time > 0

    def test_transfer_events_on_memory_streams(self, vgg_graph):
        result, _ = run(vgg_graph, "hmms")
        for event in result.events:
            if event.kind in ("offload", "prefetch"):
                assert event.stream.startswith("mem")

    def test_full_duplex_stream_separation(self, vgg_graph):
        result, _ = run(vgg_graph, "hmms")
        offload_streams = {e.stream for e in result.events if e.kind == "offload"}
        prefetch_streams = {e.stream for e in result.events if e.kind == "prefetch"}
        assert offload_streams == {"mem0"}
        assert prefetch_streams <= {"mem1"}

    def test_peak_live_consistent_with_plan(self, vgg_graph):
        result, plan = run(vgg_graph, "hmms")
        # The live-byte tracker (sum of sizes) can never exceed the
        # address-space peak of the first-fit pool.
        assert result.peak_live_bytes <= plan.device_general_peak

    def test_events_can_be_disabled(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        result = GPUSimulator(record_events=False).run(plan)
        assert result.events == []
        assert result.total_time > 0


class TestSafetyChecks:
    def test_use_after_free_detected(self, vgg_graph):
        """Regression: frees used to pop the TSO from the state map, so a
        later read fell back to the RESIDENT default and passed silently."""
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        moved = False
        for index, entry in enumerate(plan.schedule):
            if moved:
                break
            for tso_id in list(entry.frees_after):
                tso = plan.assignment.tsos[tso_id]
                reads_at_free_op = any(
                    t in vgg_graph.ops[index].inputs for t in tso.tensor_ids)
                alloc_index = next(
                    i for i, e in enumerate(plan.schedule)
                    if tso_id in e.allocs_before)
                if reads_at_free_op and alloc_index < index:
                    # Free one op early: the op at `index` still reads it.
                    entry.frees_after.remove(tso_id)
                    plan.schedule[index - 1].frees_after.append(tso_id)
                    moved = True
                    break
        assert moved, "expected a TSO read by its freeing op"
        with pytest.raises(SimulationError, match="freed"):
            GPUSimulator().run(plan)

    def test_double_free_detected(self, vgg_graph):
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        entry = next(e for e in plan.schedule if e.frees_after)
        entry.frees_after.append(entry.frees_after[0])
        with pytest.raises(SimulationError, match="freed twice"):
            GPUSimulator().run(plan)

    def test_workspace_counts_against_capacity(self, vgg_graph):
        """Regression: transient workspace bumped live bytes but skipped
        the capacity check, so oversized workspaces passed silently."""
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        plan.schedule[0].workspace_bytes = P100_NVLINK.memory_capacity + 1
        with pytest.raises(SimulationError, match="memory exceeded"):
            GPUSimulator(check_capacity=True).run(plan)

    def test_read_of_offloaded_tso_detected(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        # Corrupt the plan: sync (and free) every offload immediately after
        # it starts, then delete the prefetches so the data never returns.
        for entry in plan.schedule:
            entry.prefetch_allocs_before.clear()
            entry.prefetch_syncs_before.clear()
            entry.prefetch_starts.clear()
        with pytest.raises(SimulationError):
            GPUSimulator().run(plan)

    def test_sync_on_unissued_prefetch_detected(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms").plan(vgg_graph)
        for entry in plan.schedule:
            entry.prefetch_starts.clear()
        with pytest.raises(SimulationError):
            GPUSimulator().run(plan)

    def test_capacity_check(self, vgg_graph):
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        tiny = P100_NVLINK.with_(memory_capacity=1 << 20)
        with pytest.raises(SimulationError):
            GPUSimulator(tiny, check_capacity=True).run(plan)

    def test_capacity_check_passes_when_fits(self, vgg_graph):
        plan = HMMSPlanner(scheduler="none").plan(vgg_graph)
        GPUSimulator(check_capacity=True).run(plan)  # 16 GB is plenty


class TestTimelines:
    def test_render_contains_streams(self, vgg_graph):
        result, _ = run(vgg_graph, "hmms")
        text = render_timeline(result, width=60)
        assert "compute" in text
        assert "total" in text

    def test_render_glyphs(self, vgg_graph):
        result, _ = run(vgg_graph, "layerwise")
        text = render_timeline(result, width=60)
        assert "#" in text          # kernels
        assert ">" in text          # offloads

    def test_stall_profile_sorted(self, vgg_graph):
        result, _ = run(vgg_graph, "layerwise")
        stalls = stall_profile(result)
        durations = [s.duration for s in stalls]
        assert durations == sorted(durations, reverse=True)

    def test_utilization_summary(self, vgg_graph):
        result, _ = run(vgg_graph, "hmms")
        summary = utilization_summary(result)
        assert 0 < summary["compute"] <= 1.0
        assert all(0 <= v <= 1.0 for v in summary.values())

    def test_empty_timeline(self):
        from repro.sim import SimResult
        empty = SimResult(total_time=0, compute_time=0, stall_time=0,
                          transfer_time=0, offloaded_bytes=0,
                          peak_live_bytes=0)
        assert render_timeline(empty) == "(empty timeline)"
        assert utilization_summary(empty) == {}
