"""Tests for multi-layer split regions and the automatic model transform."""

import numpy as np
import pytest

from repro.core import SplitRegion, conv_count, find_split_prefix, to_split_cnn
from repro.core.region import get_handler
from repro.models import BasicBlock, small_resnet, small_vgg
from repro.nn import Conv2d, Linear, MaxPool2d, ReLU, Sequential
from repro.tensor import Tensor


def small_body(rng):
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2, 2),
        Conv2d(4, 8, 3, padding=1, rng=rng),
        ReLU(),
    )


class TestSplitRegion:
    def test_output_shape_matches_body(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(2, 2))
        x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert region(x).shape == body(x).shape

    def test_single_split_is_identity(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(1, 1))
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        np.testing.assert_allclose(region(x).numpy(), body(x).numpy())

    def test_asymmetric_grid(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(1, 3))
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        assert region(x).shape == body(x).shape

    def test_parameters_shared_with_body(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(2, 2))
        assert set(id(p) for p in region.parameters()) == \
            set(id(p) for p in body.parameters())

    def test_gradients_flow(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(2, 2))
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32),
                   requires_grad=True)
        region(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in region.parameters())

    def test_invalid_num_splits(self, rng):
        with pytest.raises(ValueError):
            SplitRegion(small_body(rng), num_splits=(0, 2))

    def test_stochastic_resamples_per_forward(self, rng):
        region = SplitRegion(small_body(rng), num_splits=(2, 2),
                             stochastic=True, seed=0)
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        region(x)
        first = region.last_schemes
        schemes = {region.last_schemes[0].boundaries for _ in range(10)
                   if region(x) is not None}
        assert len(schemes) >= 1  # sampling active
        region(x)
        assert region.last_schemes is not None

    def test_stochastic_eval_runs_unsplit(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(2, 2), stochastic=True, seed=0)
        region.eval()
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        np.testing.assert_allclose(region(x).numpy(), body(x).numpy())

    def test_deterministic_eval_stays_split(self, rng):
        body = small_body(rng)
        region = SplitRegion(body, num_splits=(2, 2), stochastic=False)
        region.eval()
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        split_out = region(x).numpy()
        unsplit_out = body(x).numpy()
        assert not np.allclose(split_out, unsplit_out)

    def test_unregistered_module_raises(self):
        with pytest.raises(TypeError):
            get_handler(Linear(4, 4))


class TestResNetBlockSplitting:
    def test_identity_block_shapes(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        region = SplitRegion(Sequential(block), num_splits=(2, 2))
        x = Tensor(rng.standard_normal((1, 8, 16, 16)).astype(np.float32))
        assert region(x).shape == block(x).shape

    def test_downsample_block_shapes(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        region = SplitRegion(Sequential(block), num_splits=(2, 2))
        x = Tensor(rng.standard_normal((1, 8, 16, 16)).astype(np.float32))
        assert region(x).shape == block(x).shape == (1, 16, 8, 8)

    def test_stacked_blocks(self, rng):
        body = Sequential(
            BasicBlock(4, 4, rng=rng),
            BasicBlock(4, 8, stride=2, rng=rng),
            BasicBlock(8, 8, rng=rng),
        )
        region = SplitRegion(body, num_splits=(2, 2))
        x = Tensor(rng.standard_normal((1, 4, 16, 16)).astype(np.float32))
        assert region(x).shape == body(x).shape

    def test_block_gradients(self, rng):
        block = BasicBlock(4, 8, stride=2, rng=rng)
        region = SplitRegion(Sequential(block), num_splits=(2, 2))
        x = Tensor(rng.standard_normal((1, 4, 16, 16)).astype(np.float32),
                   requires_grad=True)
        region(x).sum().backward()
        assert x.grad is not None
        assert block.conv1.weight.grad is not None
        assert block.downsample[0].weight.grad is not None


class TestFindSplitPrefix:
    def test_zero_depth(self, rng):
        items = list(small_vgg(rng=rng).features)
        assert find_split_prefix(items, 0.0) == (0, 0.0)

    def test_full_depth(self, rng):
        items = list(small_vgg(rng=rng).features)
        length, achieved = find_split_prefix(items, 1.0)
        assert achieved == pytest.approx(1.0)
        split = sum(conv_count(item) for item in items[:length])
        assert split == sum(conv_count(item) for item in items)

    def test_half_depth_closest_boundary(self, rng):
        items = list(small_vgg(rng=rng).features)  # 6 convs
        length, achieved = find_split_prefix(items, 0.5)
        assert achieved == pytest.approx(0.5)

    def test_block_granularity_resnet(self, rng):
        items = list(small_resnet(rng=rng).features)
        _, achieved = find_split_prefix(items, 0.5)
        # Joins only at block boundaries, so the fraction is approximate
        # (paper footnote 3).
        assert 0.3 < achieved < 0.8

    def test_invalid_depth(self, rng):
        with pytest.raises(ValueError):
            find_split_prefix(list(small_vgg(rng=rng).features), 1.5)

    def test_no_convs_raises(self):
        with pytest.raises(ValueError):
            find_split_prefix([ReLU()], 0.5)


class TestToSplitCnn:
    def test_shapes_preserved(self, rng):
        model = small_vgg(num_classes=5, rng=rng)
        split = to_split_cnn(model, depth=0.5, num_splits=(2, 2))
        x = Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert split(x).shape == model(x).shape == (2, 5)

    def test_weights_shared_by_reference(self, rng):
        model = small_vgg(rng=rng)
        split = to_split_cnn(model, depth=0.5)
        base_ids = {id(p) for p in model.parameters()}
        split_ids = {id(p) for p in split.parameters()}
        assert base_ids == split_ids

    def test_split_info_populated(self, rng):
        model = small_resnet(rng=rng)
        split = to_split_cnn(model, depth=0.6, num_splits=(2, 2),
                             stochastic=True)
        info = split.split_info
        assert info.stochastic
        assert info.num_splits == (2, 2)
        assert 0 < info.achieved_depth <= 1
        assert info.split_convs <= info.total_convs

    def test_zero_depth_keeps_plain_features(self, rng):
        model = small_vgg(rng=rng)
        split = to_split_cnn(model, depth=0.0)
        assert not any(isinstance(m, SplitRegion) for m in split.features)

    def test_region_placed_first(self, rng):
        model = small_vgg(rng=rng)
        split = to_split_cnn(model, depth=0.5)
        assert isinstance(split.features[0], SplitRegion)

    def test_stochastic_eval_equals_base_model_eval(self, rng):
        model = small_resnet(num_classes=4, rng=rng)
        split = to_split_cnn(model, depth=0.6, num_splits=(2, 2),
                             stochastic=True, seed=1)
        split.eval()
        model.eval()
        x = Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        np.testing.assert_allclose(split(x).numpy(), model(x).numpy(),
                                   rtol=1e-5)

    def test_memory_efficient_flag_propagates(self, rng):
        from repro.models import resnet18
        from repro.nn import init
        with init.fast_init():
            model = resnet18(dataset="cifar", memory_efficient=True)
            split = to_split_cnn(model, depth=0.5)
        assert split.memory_efficient_bn

    def test_name_encodes_configuration(self, rng):
        model = small_vgg(rng=rng)
        split = to_split_cnn(model, depth=0.5, num_splits=(2, 2),
                             stochastic=True)
        assert "ssplit2x2" in split.name
