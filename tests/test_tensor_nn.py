"""Unit tests for the fused NN primitives: conv, pooling, BN, losses."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor, avg_pool2d, conv2d, conv_output_size, cross_entropy, dropout,
    log_softmax, max_pool2d, normalize_padding2d, normalize_pair, relu,
    sigmoid, softmax, tanh,
)

from conftest import gradcheck


class TestNormalizers:
    def test_pair_from_int(self):
        assert normalize_pair(3) == (3, 3)

    def test_pair_from_sequence(self):
        assert normalize_pair([2, 4]) == (2, 4)

    def test_pair_wrong_length(self):
        with pytest.raises(ValueError):
            normalize_pair((1, 2, 3))

    def test_padding_from_int(self):
        assert normalize_padding2d(2) == ((2, 2), (2, 2))

    def test_padding_from_pair(self):
        assert normalize_padding2d((1, 3)) == ((1, 1), (3, 3))

    def test_padding_full_form(self):
        assert normalize_padding2d(((1, 0), (0, 2))) == ((1, 0), (0, 2))

    def test_output_size(self):
        assert conv_output_size(224, 3, 1, 1, 1) == 224
        assert conv_output_size(224, 7, 2, 3, 3) == 112
        assert conv_output_size(5, 3, 2, 1, 0) == 2


class TestConv2d:
    def test_known_values(self):
        x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        w = np.array([[[[1.0, 0.0], [0.0, 2.0]]]])
        out = conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.numpy()[0, 0], [[8, 11], [17, 20]])

    def test_matches_bruteforce(self, rng):
        x = rng.standard_normal((2, 3, 6, 7))
        w = rng.standard_normal((4, 3, 3, 2))
        out = conv2d(Tensor(x), Tensor(w), stride=(2, 1)).numpy()
        n, k, ho, wo = out.shape
        for b in range(n):
            for o in range(k):
                for i in range(ho):
                    for j in range(wo):
                        window = x[b, :, 2 * i:2 * i + 3, j:j + 2]
                        expected = (window * w[o]).sum()
                        assert out[b, o, i, j] == pytest.approx(expected, rel=1e-5)

    def test_bias_added(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((3, 2, 3, 3))
        b = np.array([1.0, -2.0, 0.5])
        without = conv2d(Tensor(x), Tensor(w)).numpy()
        with_bias = conv2d(Tensor(x), Tensor(w), Tensor(b)).numpy()
        np.testing.assert_allclose(with_bias, without + b.reshape(1, 3, 1, 1),
                                   rtol=1e-6)

    def test_asymmetric_padding_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)))
        w = Tensor(rng.standard_normal((1, 1, 3, 3)))
        out = conv2d(x, w, padding=((2, 0), (0, 1)))
        assert out.shape == (1, 1, 5, 4)

    def test_negative_padding_crops(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 6, 6)))
        w = Tensor(rng.standard_normal((1, 1, 3, 3)))
        out = conv2d(x, w, padding=((-1, 0), (0, -1)))
        assert out.shape == (1, 1, 3, 3)

    @pytest.mark.parametrize("stride,padding", [
        (1, 0), (2, 1), ((1, 2), ((1, 0), (0, 1))), (1, ((-1, 1), (0, 0))),
    ])
    def test_input_grad(self, rng, stride, padding):
        w = rng.standard_normal((2, 2, 3, 3))
        gradcheck(
            lambda t: conv2d(t, Tensor(w, dtype=np.float64), None,
                             stride=stride, padding=padding),
            rng.standard_normal((1, 2, 6, 6)),
        )

    def test_weight_grad(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        gradcheck(
            lambda t: conv2d(Tensor(x, dtype=np.float64), t, None, padding=1),
            rng.standard_normal((3, 2, 3, 3)),
        )

    def test_bias_grad(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        w = rng.standard_normal((3, 2, 3, 3))
        gradcheck(
            lambda t: conv2d(Tensor(x, dtype=np.float64),
                             Tensor(w, dtype=np.float64), t),
            rng.standard_normal((3,)),
        )


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_default_stride_is_kernel(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 6, 6)))
        assert max_pool2d(x, 3).shape == (1, 1, 2, 2)

    def test_overlapping_pool_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 7, 7)))
        assert max_pool2d(x, 3, 2).shape == (1, 1, 3, 3)

    def test_max_pool_padding_uses_neg_inf(self, rng):
        x = Tensor(-np.abs(rng.standard_normal((1, 1, 4, 4))))
        out = max_pool2d(x, 2, 2, padding=1)
        # With -inf padding, border outputs equal real (negative) maxima,
        # never the padding value.
        assert np.isfinite(out.numpy()).all()
        assert (out.numpy() <= 0).all()

    def test_max_pool_grad(self, rng):
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        gradcheck(lambda t: max_pool2d(t, 2, 2), x)

    def test_max_pool_overlap_grad(self, rng):
        x = rng.permutation(49).astype(np.float64).reshape(1, 1, 7, 7)
        gradcheck(lambda t: max_pool2d(t, 3, 2), x)

    def test_avg_pool_grad(self, rng):
        gradcheck(lambda t: avg_pool2d(t, 2, 2, padding=1),
                  rng.standard_normal((2, 2, 4, 4)))


class TestActivations:
    def test_relu_values(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), [0.0, 0.0, 2.0])

    def test_relu_grad(self, rng):
        x = rng.standard_normal((4, 4))
        x[np.abs(x) < 0.1] = 0.5
        gradcheck(lambda t: relu(t), x)

    def test_sigmoid_grad(self, rng):
        gradcheck(lambda t: sigmoid(t), rng.standard_normal((3, 3)))

    def test_tanh_grad(self, rng):
        gradcheck(lambda t: tanh(t), rng.standard_normal((3, 3)))

    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.standard_normal((4, 7))))
        np.testing.assert_allclose(out.numpy().sum(axis=1), 1.0, rtol=1e-5)

    def test_log_softmax_stable_for_large_logits(self):
        out = log_softmax(Tensor(np.array([[1000.0, 0.0]])))
        assert np.isfinite(out.numpy()).all()

    def test_log_softmax_grad(self, rng):
        gradcheck(lambda t: log_softmax(t, axis=1), rng.standard_normal((3, 5)))


class TestCrossEntropyAndDropout:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-5)

    def test_cross_entropy_grad(self, rng):
        targets = np.array([1, 0, 4])
        gradcheck(lambda t: cross_entropy(t, targets),
                  rng.standard_normal((3, 5)))

    def test_dropout_eval_identity(self, rng):
        x = rng.standard_normal((4, 4))
        out = dropout(Tensor(x), p=0.5, training=False)
        np.testing.assert_allclose(out.numpy(), x)

    def test_dropout_scales_survivors(self, rng):
        x = np.ones((100, 100))
        out = dropout(Tensor(x), p=0.5, training=True, seed=0).numpy()
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_dropout_grad_masks(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True, dtype=np.float64)
        out = dropout(x, p=0.5, training=True, seed=1)
        out.sum().backward()
        mask = out.numpy() != 0
        np.testing.assert_allclose(x.grad[mask], 2.0)
        np.testing.assert_allclose(x.grad[~mask], 0.0)
