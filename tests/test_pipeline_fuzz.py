"""Property-based fuzzing of the whole pipeline.

Generates random CNN architectures, optionally split-transforms them, and
pushes them through graph construction -> HMMS planning -> simulation.
Two independent oracles check every plan: the simulator's runtime safety
checker and the static verifier (:mod:`repro.hmms.verify`) — they share no
code, so each guards the other.  A mutation harness then corrupts valid
zoo plans one field at a time and asserts the verifier rejects each
corruption naming the violated invariant family.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.hmms import HMMSPlanner, verify_plan
from repro.hmms.verify import (
    FAMILY_COMPLETENESS, FAMILY_OVERLAP, FAMILY_REFCOUNT, FAMILY_RESIDENCY,
    FAMILY_TRANSFER,
)
from repro.models import build_model
from repro.models.base import ConvClassifier
from repro.nn import (
    BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Sequential,
)
from repro.nn import init
from repro.sim import GPUSimulator
from repro.tensor import Tensor


@st.composite
def random_cnn(draw):
    """A random small CNN on 16x16 inputs (conv/bn/relu/pool stages)."""
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    layers = []
    channels = 3
    size = 16
    num_stages = draw(st.integers(1, 3))
    for _ in range(num_stages):
        out_channels = draw(st.sampled_from([4, 8, 12]))
        kernel = draw(st.sampled_from([1, 3, 5]))
        padding = kernel // 2
        layers.append(Conv2d(channels, out_channels, kernel,
                             padding=padding, rng=rng))
        channels = out_channels
        if draw(st.booleans()):
            layers.append(BatchNorm2d(channels))
        layers.append(ReLU())
        if draw(st.booleans()) and size >= 4:
            layers.append(MaxPool2d(2, 2))
            size //= 2
    layers.append(GlobalAvgPool2d())
    features = Sequential(*layers)
    classifier = Linear(channels, 4, rng=rng)
    model = ConvClassifier(features, classifier, name="fuzz", input_size=16)
    return model, size


@given(random_cnn(), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_random_model_full_pipeline(case, batch):
    model, _ = case
    x = Tensor(np.random.default_rng(0)
               .standard_normal((batch, 3, 16, 16)).astype(np.float32))
    logits = model(x)
    assert logits.shape == (batch, 4)

    graph = build_training_graph(model, batch)
    graph.validate()
    # Symbolic classifier output matches the numeric one.
    linear_ops = [op for op in graph.forward_ops() if op.op_type == "linear"]
    symbolic = graph.tensors[linear_ops[-1].outputs[0]]
    assert symbolic.shape == logits.shape

    for scheduler in ("none", "layerwise", "hmms"):
        plan = HMMSPlanner(scheduler=scheduler).plan(graph)
        result = GPUSimulator().run(plan)     # oracle: raises on violation
        assert result.total_time > 0
        assert plan.device_general_peak > 0


@given(random_cnn(), st.sampled_from([(1, 2), (2, 2), (2, 1)]),
       st.floats(0.2, 1.0), st.booleans())
@settings(max_examples=25, deadline=None)
def test_random_split_model_pipeline(case, grid, depth, stochastic):
    model, min_size = case
    try:
        split = to_split_cnn(model, depth=depth, num_splits=grid,
                             stochastic=stochastic, seed=0)
    except ValueError:
        return  # split infeasible for this tiny architecture — acceptable
    x = Tensor(np.random.default_rng(1)
               .standard_normal((2, 3, 16, 16)).astype(np.float32))
    try:
        out = split(x)
    except ValueError:
        return  # boundary packing infeasible at runtime sizes
    assert out.shape == model(x).shape

    graph = build_training_graph(split, 2)
    plan = HMMSPlanner(scheduler="hmms").plan(graph)
    GPUSimulator().run(plan)
    report = verify_plan(plan)
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# Model-zoo matrix: every plan the planner can emit must verify clean.
# ----------------------------------------------------------------------
ZOO = ("alexnet", "vgg11", "resnet18")


def _zoo_graph(name, split):
    kwargs = {} if name == "alexnet" else {
        "dataset": "imagenet", "num_classes": 1000}
    with init.fast_init():
        model = build_model(name, **kwargs)
        if split:
            model = to_split_cnn(model, depth=0.5, num_splits=(2, 2))
    return build_training_graph(model, 32)


@pytest.fixture(scope="module", params=ZOO)
def zoo_graphs(request):
    """(unsplit, split) training graphs for one zoo model."""
    name = request.param
    return name, _zoo_graph(name, False), _zoo_graph(name, True)


@pytest.mark.parametrize("split", [False, True], ids=["unsplit", "split"])
@pytest.mark.parametrize("grouped", [False, True], ids=["fifo", "grouped"])
def test_zoo_plans_verify_clean(zoo_graphs, split, grouped):
    name, unsplit_graph, split_graph = zoo_graphs
    graph = split_graph if split else unsplit_graph
    planner = HMMSPlanner(scheduler="hmms", grouped_sync=grouped)
    plan = planner.plan(graph)
    report = verify_plan(plan, device=planner.device,
                         cost_model=planner.cost_model)
    assert report.ok, f"{name}: {report.render()}"


# ----------------------------------------------------------------------
# Mutation harness: corrupt one field of a valid zoo plan, assert the
# verifier flags it and names the violated family.
# ----------------------------------------------------------------------
def _mutate_double_alloc(plan):
    entry = next(e for e in plan.schedule if e.allocs_before)
    entry.allocs_before.append(entry.allocs_before[0])


def _mutate_double_free(plan):
    entry = next(e for e in plan.schedule if e.frees_after)
    entry.frees_after.append(entry.frees_after[0])


def _mutate_understated_peak(plan):
    plan.device_general_peak //= 2


def _mutate_inflated_workspace(plan):
    entry = max(plan.schedule, key=lambda e: e.workspace_bytes)
    entry.workspace_bytes = plan.device_general_peak + 1


def _mutate_drop_offload_start(plan):
    entry = next(e for e in plan.schedule if e.offload_starts)
    entry.offload_starts.pop(0)


def _mutate_drop_prefetch_start(plan):
    entry = next(e for e in plan.schedule if e.prefetch_starts)
    entry.prefetch_starts.pop(0)


def _mutate_leak(plan):
    entry = next(e for e in plan.schedule if e.frees_after)
    entry.frees_after.pop(0)


def _mutate_premature_free(plan):
    # Move a free to its TSO's alloc op, ahead of the last consumer.
    for entry in plan.schedule:
        for tso_id in entry.frees_after:
            alloc_index = next(
                (i for i, e in enumerate(plan.schedule)
                 if tso_id in e.allocs_before), None)
            if alloc_index is not None and alloc_index < entry.op_index:
                entry.frees_after.remove(tso_id)
                plan.schedule[alloc_index].frees_after.append(tso_id)
                return
    raise AssertionError("no movable free found")


def _mutate_drop_all_prefetches(plan):
    # One offloaded TSO never comes back from the host.
    tso_id = next(e.offload_starts[0] for e in plan.schedule
                  if e.offload_starts)
    for entry in plan.schedule:
        for bucket in (entry.prefetch_allocs_before, entry.prefetch_starts,
                       entry.prefetch_syncs_before):
            if tso_id in bucket:
                bucket.remove(tso_id)


def _mutate_late_prefetch_sync(plan):
    # Synchronize one prefetch one op after the consumer that needs it.
    index, entry = next(
        (i, e) for i, e in enumerate(plan.schedule)
        if e.prefetch_syncs_before and i + 1 < len(plan.schedule))
    tso_id = entry.prefetch_syncs_before.pop(0)
    plan.schedule[index + 1].prefetch_syncs_before.append(tso_id)


MUTATIONS = [
    (FAMILY_RESIDENCY, _mutate_double_alloc),
    (FAMILY_RESIDENCY, _mutate_double_free),
    (FAMILY_OVERLAP, _mutate_understated_peak),
    (FAMILY_OVERLAP, _mutate_inflated_workspace),
    (FAMILY_TRANSFER, _mutate_drop_offload_start),
    (FAMILY_TRANSFER, _mutate_drop_prefetch_start),
    (FAMILY_REFCOUNT, _mutate_leak),
    (FAMILY_REFCOUNT, _mutate_premature_free),
    (FAMILY_COMPLETENESS, _mutate_drop_all_prefetches),
    (FAMILY_COMPLETENESS, _mutate_late_prefetch_sync),
]


@pytest.fixture(scope="module")
def zoo_hmms_plan():
    return HMMSPlanner(scheduler="hmms").plan(_zoo_graph("alexnet", False))


@pytest.mark.parametrize(
    "family,mutate", MUTATIONS,
    ids=[f"{family}-{fn.__name__.lstrip('_')}" for family, fn in MUTATIONS])
def test_mutated_zoo_plan_rejected(zoo_hmms_plan, family, mutate):
    assert verify_plan(zoo_hmms_plan).ok      # sanity: clean before mutation
    plan = copy.deepcopy(zoo_hmms_plan)
    mutate(plan)
    report = verify_plan(plan)
    assert not report.ok, f"{mutate.__name__} went undetected"
    assert family in report.families_violated(), report.render()


# ----------------------------------------------------------------------
# Dependency-DAG completeness: the executor, the free plan, and the race
# detector all trust op_dependencies() to carry every ordering edge.
# ----------------------------------------------------------------------
@given(random_cnn(), st.sampled_from([None, (2, 2), (1, 2)]))
@settings(max_examples=25, deadline=None)
def test_op_dependencies_cover_every_edge(case, grid):
    model, _ = case
    if grid is not None:
        try:
            model = to_split_cnn(model, depth=0.5, num_splits=grid)
        except ValueError:
            return  # split infeasible for this tiny architecture
    graph = build_training_graph(model, 2)
    deps = graph.op_dependencies()
    assert set(deps) == {op.id for op in graph.ops}
    for op in graph.ops:
        expected = {graph.tensors[t].producer for t in op.inputs
                    if graph.tensors[t].producer is not None
                    and graph.tensors[t].producer != op.id}
        if op.forward_of is not None:
            expected.add(op.forward_of)
        # Exactly the producer-consumer edges plus the forward twin —
        # nothing missing (soundness of every downstream consumer) and
        # nothing invented (no lost parallelism).
        assert deps[op.id] == expected, op
