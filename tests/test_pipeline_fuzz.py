"""Property-based fuzzing of the whole pipeline.

Generates random CNN architectures, optionally split-transforms them, and
pushes them through graph construction -> HMMS planning -> simulation.
The simulator's safety checker is the oracle: any residency violation,
capacity bug or schedule inconsistency raises.  Numeric forward shapes are
cross-checked against the symbolic IR.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.hmms import HMMSPlanner
from repro.models.base import ConvClassifier
from repro.nn import (
    BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Sequential,
)
from repro.sim import GPUSimulator
from repro.tensor import Tensor


@st.composite
def random_cnn(draw):
    """A random small CNN on 16x16 inputs (conv/bn/relu/pool stages)."""
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    layers = []
    channels = 3
    size = 16
    num_stages = draw(st.integers(1, 3))
    for _ in range(num_stages):
        out_channels = draw(st.sampled_from([4, 8, 12]))
        kernel = draw(st.sampled_from([1, 3, 5]))
        padding = kernel // 2
        layers.append(Conv2d(channels, out_channels, kernel,
                             padding=padding, rng=rng))
        channels = out_channels
        if draw(st.booleans()):
            layers.append(BatchNorm2d(channels))
        layers.append(ReLU())
        if draw(st.booleans()) and size >= 4:
            layers.append(MaxPool2d(2, 2))
            size //= 2
    layers.append(GlobalAvgPool2d())
    features = Sequential(*layers)
    classifier = Linear(channels, 4, rng=rng)
    model = ConvClassifier(features, classifier, name="fuzz", input_size=16)
    return model, size


@given(random_cnn(), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_random_model_full_pipeline(case, batch):
    model, _ = case
    x = Tensor(np.random.default_rng(0)
               .standard_normal((batch, 3, 16, 16)).astype(np.float32))
    logits = model(x)
    assert logits.shape == (batch, 4)

    graph = build_training_graph(model, batch)
    graph.validate()
    # Symbolic classifier output matches the numeric one.
    linear_ops = [op for op in graph.forward_ops() if op.op_type == "linear"]
    symbolic = graph.tensors[linear_ops[-1].outputs[0]]
    assert symbolic.shape == logits.shape

    for scheduler in ("none", "layerwise", "hmms"):
        plan = HMMSPlanner(scheduler=scheduler).plan(graph)
        result = GPUSimulator().run(plan)     # oracle: raises on violation
        assert result.total_time > 0
        assert plan.device_general_peak > 0


@given(random_cnn(), st.sampled_from([(1, 2), (2, 2), (2, 1)]),
       st.floats(0.2, 1.0), st.booleans())
@settings(max_examples=25, deadline=None)
def test_random_split_model_pipeline(case, grid, depth, stochastic):
    model, min_size = case
    try:
        split = to_split_cnn(model, depth=depth, num_splits=grid,
                             stochastic=stochastic, seed=0)
    except ValueError:
        return  # split infeasible for this tiny architecture — acceptable
    x = Tensor(np.random.default_rng(1)
               .standard_normal((2, 3, 16, 16)).astype(np.float32))
    try:
        out = split(x)
    except ValueError:
        return  # boundary packing infeasible at runtime sizes
    assert out.shape == model(x).shape

    graph = build_training_graph(split, 2)
    plan = HMMSPlanner(scheduler="hmms").plan(graph)
    GPUSimulator().run(plan)
