"""Tests for repro.infer: tiling, blending, streaming byte-identity.

The load-bearing claim is that patch inference is *exact*: merged tile
outputs are byte-identical to the unsplit forward pass, because every
tile derives its input window and paddings from the same Eq. 1-2
primitive (``repro.core.scheme``) that sizes mesh halos.
"""

import numpy as np
import pytest
from hypothesis import given, settings, assume
from hypothesis import strategies as st

from repro.core.region import SplitRegion, get_handler
from repro.core.scheme import (
    SplitScheme, WindowSpec, compute_input_split, compute_paddings,
    input_split_bounds, receptive_interval, window_input_range,
)
from repro.infer import (
    BlendMerger, GridSplitter, MERGE_MODES, PatchInferer,
    flatten_dense_body,
)
from repro.mesh.partition import boundary_bounds
from repro.models import alexnet, small_resnet, small_vgg, vgg11
from repro.nn import Conv2d, MaxPool2d, Sequential


def make_inferer(model_fn=small_vgg, seed=0, **kwargs):
    model = model_fn(rng=np.random.default_rng(seed))
    return PatchInferer(model, **kwargs)


def random_image(hw, channels=3, seed=0, batch=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, channels) + tuple(hw))


# ----------------------------------------------------------------------
# The shared Eq. 1-2 primitive
# ----------------------------------------------------------------------
# Padding strictly below the kernel (every real conv/pool layer obeys
# this); pad >= k would put whole output windows inside the pad region.
window_specs = st.builds(
    lambda k, s, pb, pe: WindowSpec(k, s, pb % k, pe % k),
    st.integers(1, 5), st.integers(1, 3), st.integers(0, 4),
    st.integers(0, 4),
)


class TestSchemePrimitive:
    @given(spec=window_specs, n=st.integers(8, 64),
           lo=st.integers(0, 20), width=st.integers(1, 20))
    def test_window_input_range_is_output_exact(self, spec, n, lo, width):
        """The returned slice + paddings compute exactly the requested
        output count — the property every tile graph relies on."""
        try:
            out = spec.output_size(n)
        except ValueError:
            assume(False)
        assume(lo + width <= out)
        start, stop, pad_b, pad_e = window_input_range(
            spec, lo, lo + width, n)
        assert 0 <= start <= stop <= n
        patched = WindowSpec(spec.kernel, spec.stride, pad_b, pad_e)
        assert patched.output_size(stop - start) == width

    @given(spec=window_specs, n=st.integers(8, 64))
    def test_full_range_recovers_whole_input(self, spec, n):
        """Backing the full output range returns the whole input with the
        op's own (used) padding — border tiles inherit exactly this."""
        try:
            out = spec.output_size(n)
        except ValueError:
            assume(False)
        start, stop, pad_b, pad_e = window_input_range(spec, 0, out, n)
        assert start == 0
        # The slice ends where the last window does; input past it is a
        # dead tail the unsplit op never reads either (e.g. odd input
        # into a stride-2 pool).
        assert stop == min(
            n, (out - 1) * spec.stride + spec.kernel - spec.pad_begin)
        assert pad_b == spec.pad_begin
        # pad_end may undershoot spec.pad_end when the stride leaves a
        # dead tail — the unsplit op never reads that padding either.
        assert 0 <= pad_e <= spec.pad_end

    @given(spec=window_specs, n=st.integers(8, 64),
           parts=st.integers(2, 4))
    def test_matches_input_split_bounds(self, spec, n, parts):
        """receptive_interval endpoints ARE the Eq. 1-2 (lb, ub) pairs
        that input_split_bounds (mesh halo sizing) publishes."""
        try:
            out = spec.output_size(n)
        except ValueError:
            assume(False)
        assume(parts <= out)
        scheme = SplitScheme.even(out, parts)
        bounds = input_split_bounds(scheme, spec)
        for i, o_i in enumerate(scheme.boundaries[1:], start=1):
            lb = receptive_interval(spec, o_i, o_i + 1)[0]
            ub = receptive_interval(spec, o_i - 1, o_i)[1]
            assert bounds[i] == (min(lb, ub), max(lb, ub))
            # The paper's closed forms, independently restated.
            assert lb == o_i * spec.stride - spec.pad_begin
            assert ub == ((o_i - 1) * spec.stride + spec.kernel
                          - spec.pad_begin)


# ----------------------------------------------------------------------
# Satellite 4: border semantics — GridSplitter vs mesh split schemes
# ----------------------------------------------------------------------
class TestBorderSemanticsSharedWithMesh:
    @given(k=st.integers(1, 5), s=st.integers(1, 3), p=st.integers(0, 2),
           parts=st.integers(2, 4), n=st.integers(24, 64))
    @settings(max_examples=40, deadline=None)
    def test_single_layer_tiles_land_on_position0_split(self, k, s, p,
                                                        parts, n):
        """At overlap=0, tile input starts equal the position-0 input
        split (every boundary at its lb), and the *border* paddings equal
        the zero-pad split semantics of compute_paddings — the exact
        sense in which image-border halo extraction and mesh zero-pad
        splitting are the same math."""
        assume(k >= s)                   # paper's split-region contract
        assume(p < k)
        spec = WindowSpec(k, s, p, p)
        try:
            out = spec.output_size(n)
        except ValueError:
            assume(False)
        assume(parts <= out)
        out_scheme = SplitScheme.even(out, parts)
        # Skip configs where compute_input_split would clamp (boundaries
        # colliding); the property is about the unclamped shared math.
        bounds = input_split_bounds(out_scheme, spec)
        lbs = [b[0] for b in bounds]
        assume(all(lbs[i] > lbs[i - 1] for i in range(2, len(lbs))))
        assume(lbs[1] >= 1 and lbs[-1] <= n - parts)

        in_split = compute_input_split(out_scheme, spec, n, position=0.0)
        mesh_pads = compute_paddings(out_scheme, in_split, spec, out)

        conv = Conv2d(1, 1, kernel_size=k, stride=s, padding=p)
        plan = GridSplitter((parts, 1), overlap=0).plan(
            Sequential(conv), (n, n))
        rows = [plan.tiles[i * 1] for i in range(parts)]
        starts = tuple(tile.in_range[0][0] for tile in rows)
        assert starts == in_split.boundaries
        # Border paddings: first tile's begin pad and last tile's end pad
        # are the unsplit op's own clamped zero padding on both paths.
        first_pad = rows[0].layer_paddings[0][0]
        last_pad = rows[-1].layer_paddings[0][0]
        assert first_pad[0] == mesh_pads[0][0] == p
        # The mesh declares the op's full end padding; the tiler declares
        # only the *used* part — they differ by the dead tail past the
        # last window, which neither path ever reads.
        dead_tail = (n + 2 * p - k) % s
        assert last_pad[1] == max(0, mesh_pads[-1][1] - dead_tail)
        # Interior tiles read real halo pixels instead of padding.
        for tile in rows[1:]:
            assert tile.layer_paddings[0][0][0] == 0
        for tile in rows[:-1]:
            assert tile.layer_paddings[0][0][1] == 0

    @pytest.mark.parametrize("grid", [(2, 2), (4, 4)])
    def test_multilayer_tiles_land_on_boundary_bounds(self, grid):
        """Through the full small_vgg stack, tile input ranges land on
        exactly the boundaries ``repro.mesh.partition.boundary_bounds``
        derives for a SplitRegion over the same body (shared helper, not
        copied math)."""
        model = small_vgg(rng=np.random.default_rng(0))
        in_hw = (64, 64)
        region = SplitRegion(model.features, num_splits=grid)
        handler = get_handler(region.body)
        out_hw = handler.trace(region.body, in_hw)
        scheme_h = SplitScheme.even(out_hw[0], grid[0])
        scheme_w = SplitScheme.even(out_hw[1], grid[1])

        plan = GridSplitter(grid, overlap=0).plan(model, in_hw)
        assert plan.out_hw == out_hw
        for axis, scheme in ((0, scheme_h), (1, scheme_w)):
            low, high = boundary_bounds(
                handler, region, scheme_h, scheme_w, in_hw, axis)
            if axis == 0:
                tiles = [plan.tiles[i * grid[1]] for i in range(grid[0])]
            else:
                tiles = plan.tiles[:grid[1]]
            starts = tuple(t.in_range[axis][0] for t in tiles)
            stops = tuple(t.in_range[axis][1] for t in tiles)
            # position-0 boundaries = lower receptive bounds = tile starts
            assert starts == low
            # position-1 boundary i = upper bound = tile i-1's stop
            # (the halo's far edge); the last tile runs to the image edge.
            assert stops[:-1] == high[1:]
            assert stops[-1] == in_hw[axis]


# ----------------------------------------------------------------------
# GridSplitter geometry
# ----------------------------------------------------------------------
class TestGridSplitter:
    def test_own_ranges_partition_output_plane(self):
        model = small_vgg(rng=np.random.default_rng(0))
        for overlap in (0, 2):
            plan = GridSplitter((3, 2), overlap=overlap).plan(model, (64, 64))
            covered = np.zeros(plan.out_hw, dtype=int)
            for tile in plan.tiles:
                (h0, h1), (w0, w1) = tile.own_range
                covered[h0:h1, w0:w1] += 1
            assert (covered == 1).all()     # exact partition, no overlap

    def test_overlap_expands_out_range_clamped(self):
        model = small_vgg(rng=np.random.default_rng(0))
        plan = GridSplitter((2, 2), overlap=3).plan(model, (64, 64))
        for tile in plan.tiles:
            for axis in (0, 1):
                own = tile.own_range[axis]
                out = tile.out_range[axis]
                assert out[0] == max(0, own[0] - 3)
                assert out[1] == min(plan.out_hw[axis], own[1] + 3)

    def test_variants_group_by_shape_and_padding(self):
        model = small_vgg(rng=np.random.default_rng(0))
        plan = GridSplitter((4, 4), overlap=0).plan(model, (64, 64))
        assert plan.num_patches == 16
        variants = plan.variants()
        # SplitScheme.even rounding can make tile sizes unequal, so the
        # count is not bounded by 9 — only by the tile count.
        assert 1 <= len(variants) <= 16
        for variant, tiles in variants.items():
            for tile in tiles:
                assert tile.in_shape == variant.in_shape
                assert tile.layer_paddings == variant.layer_paddings

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            GridSplitter((0, 2))
        with pytest.raises(ValueError):
            GridSplitter((2, 2), overlap=-1)
        model = small_vgg(rng=np.random.default_rng(0))
        # grid outnumbers the 8x8 output plane
        with pytest.raises(ValueError):
            GridSplitter((9, 1)).plan(model, (64, 64))

    def test_residual_bodies_are_rejected(self):
        model = small_resnet(rng=np.random.default_rng(0))
        with pytest.raises(TypeError):
            flatten_dense_body(model)
        with pytest.raises(TypeError):
            PatchInferer(model)

    def test_flatten_unwraps_split_region(self):
        model = small_vgg(rng=np.random.default_rng(0))
        region = SplitRegion(model.features, num_splits=(2, 2))
        assert flatten_dense_body(region) == flatten_dense_body(model)


# ----------------------------------------------------------------------
# Tentpole: byte-identity of merged patches vs the unsplit pass
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("grid", [(2, 2), (3, 3)])
    @pytest.mark.parametrize("overlap", [0, 1, 2])
    def test_small_vgg_valid_merge_is_byte_identical(self, grid, overlap):
        inferer = make_inferer()
        x = random_image((64, 64))
        ref = inferer.run_unsplit(x)
        out = inferer.infer(x, grid=grid, overlap=overlap, merge="valid")
        assert out.shape == ref.shape
        assert out.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("overlap", [0, 1])
    def test_alexnet_valid_merge_is_byte_identical(self, overlap):
        inferer = make_inferer(alexnet)
        x = random_image((129, 129), seed=1)
        ref = inferer.run_unsplit(x)
        out = inferer.infer(x, grid=(2, 2), overlap=overlap)
        assert out.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("overlap", [0, 1])
    def test_vgg11_valid_merge_is_byte_identical(self, overlap):
        inferer = make_inferer(vgg11, seed=2)
        x = random_image((96, 96), seed=2)
        ref = inferer.run_unsplit(x)
        out = inferer.infer(x, grid=(2, 2), overlap=overlap)
        assert out.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("overlap", [0, 1])
    def test_compiled_path_is_byte_identical(self, overlap):
        """Identity must survive the lowered/fused CompiledPlan path."""
        inferer = make_inferer(compile_plans=True)
        x = random_image((64, 64), seed=3)
        ref = inferer.run_unsplit(x)
        out = inferer.infer(x, grid=(2, 2), overlap=overlap)
        assert out.tobytes() == ref.tobytes()

    def test_batched_input_matches_per_image(self):
        inferer = make_inferer()
        x = random_image((64, 64), seed=4, batch=3)
        out = inferer.infer(x, grid=(2, 2))
        for i in range(3):
            single = inferer.infer(x[i:i + 1], grid=(2, 2))
            assert out[i].tobytes() == single[0].tobytes()


# ----------------------------------------------------------------------
# Blend merging
# ----------------------------------------------------------------------
class TestBlendMerger:
    @pytest.mark.parametrize("mode", ["constant", "gaussian"])
    def test_blended_merge_matches_unsplit_closely(self, mode):
        """Overlapping tiles compute identical values (exactness), so any
        normalized blend reproduces the unsplit output to roundoff."""
        inferer = make_inferer()
        x = random_image((64, 64), seed=5)
        ref = inferer.run_unsplit(x)
        out = inferer.infer(x, grid=(2, 2), overlap=2, merge=mode)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BlendMerger("bilinear")
        assert set(MERGE_MODES) == {"valid", "constant", "gaussian"}

    def test_gaussian_importance_is_symmetric_peaked(self):
        merger = BlendMerger("gaussian")
        weight = merger._importance((5, 7))
        assert weight.shape == (5, 7)
        assert (weight > 0).all()
        np.testing.assert_allclose(weight, weight[::-1, ::-1])
        assert weight[2, 3] == weight.max()


# ----------------------------------------------------------------------
# Bounded-memory planning
# ----------------------------------------------------------------------
class TestMemoryBudget:
    def test_budget_bounds_patch_batch_and_peak(self):
        wide = make_inferer(numeric=False)
        report = wide.plan_dense((64, 64), grid=(2, 2))
        assert report.patches == 4
        assert report.patch_batch >= 1
        assert report.peak_bytes <= wide.memory_budget

        # A budget that admits exactly one patch per execution.
        single_peak = max(
            wide.entry_for(v, 1).plan.device_peak
            for v in GridSplitter((2, 2)).plan(wide.model, (64, 64))
            .variants())
        tight = make_inferer(numeric=False, memory_budget=single_peak)
        tight_report = tight.plan_dense((64, 64), grid=(2, 2))
        assert tight_report.patch_batch == 1
        assert tight_report.peak_bytes <= single_peak
        assert tight_report.executions == tight_report.patches

    def test_identity_survives_tight_budget(self):
        wide = make_inferer(numeric=False)
        single_peak = max(
            wide.entry_for(v, 1).plan.device_peak
            for v in GridSplitter((2, 2), overlap=1)
            .plan(wide.model, (64, 64)).variants())
        tight = make_inferer(memory_budget=single_peak)
        x = random_image((64, 64), seed=6)
        ref = tight.run_unsplit(x)
        out = tight.infer(x, grid=(2, 2), overlap=1)
        assert out.tobytes() == ref.tobytes()

    def test_impossible_budget_suggests_finer_grid(self):
        inferer = make_inferer(numeric=False, memory_budget=1)
        with pytest.raises(ValueError, match="finer grid"):
            inferer.plan_dense((64, 64), grid=(2, 2))

    def test_fixed_patch_batch_over_budget_raises(self):
        inferer = make_inferer(numeric=False, memory_budget=1,
                               patch_batch=4)
        with pytest.raises(ValueError, match="over the"):
            inferer.plan_dense((64, 64), grid=(2, 2))

    def test_unsplit_entry_ignores_budget(self):
        """The unsplit baseline may exceed the budget — it is the point
        of comparison, not a servable plan."""
        inferer = make_inferer(numeric=False, memory_budget=1 << 20)
        entry = inferer.unsplit_entry((64, 64))
        assert entry.plan.device_peak > inferer.memory_budget

    def test_max_single_pass_side_is_dyadic_and_bounded(self):
        inferer = make_inferer(numeric=False)
        budget = 64 << 20
        side = inferer.max_single_pass_side(budget=budget)
        assert side >= 32 and (side & (side - 1)) == 0
        assert inferer.unsplit_entry((side, side)).plan.device_peak \
            <= budget
        assert inferer.unsplit_entry(
            (side * 2, side * 2)).plan.device_peak > budget


# ----------------------------------------------------------------------
# Plan cache + counters
# ----------------------------------------------------------------------
class TestCacheAndCounters:
    def test_repeat_plan_hits_cache(self):
        inferer = make_inferer(numeric=False)
        inferer.plan_dense((64, 64), grid=(2, 2))
        misses = inferer.cache.misses
        inferer.plan_dense((64, 64), grid=(2, 2))
        assert inferer.cache.misses == misses
        assert inferer.cache.hits > 0
        assert inferer.cache.misses == len(inferer.cache) \
            + inferer.cache.evictions

    def test_plans_verified_tracks_cache_misses(self):
        inferer = make_inferer(numeric=False)
        inferer.plan_dense((64, 64), grid=(2, 2))
        inferer.plan_dense((64, 64), grid=(3, 3))
        assert inferer.plans_verified == inferer.cache.misses

    def test_patch_counters_account_padding(self):
        inferer = make_inferer(patch_batch=4)
        x = random_image((64, 64), seed=7)
        inferer.infer(x, grid=(3, 3))     # 9 patches, buckets of 4
        assert inferer.executed_patches == 9
        report = inferer.plan_dense((64, 64), grid=(3, 3))
        assert inferer.padded_patches \
            == report.executions * report.patch_batch - report.patches


# ----------------------------------------------------------------------
# Input validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_symbolic_inferer_rejects_numerics(self):
        inferer = make_inferer(numeric=False)
        with pytest.raises(ValueError, match="numeric"):
            inferer.infer(random_image((64, 64)))
        with pytest.raises(ValueError, match="numeric"):
            inferer.run_unsplit(random_image((64, 64)))

    def test_wrong_dtype_rejected(self):
        inferer = make_inferer()
        x = random_image((64, 64)).astype(np.float32)
        with pytest.raises(TypeError, match="float64"):
            inferer.infer(x)

    def test_wrong_rank_and_channels_rejected(self):
        inferer = make_inferer()
        with pytest.raises(ValueError, match="channels"):
            inferer.infer(np.zeros((1, 4, 64, 64)))
        with pytest.raises(ValueError, match="dense input"):
            inferer.infer(np.zeros((1, 1, 3, 64, 64)))

    def test_constructor_validation(self):
        model = small_vgg(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            PatchInferer(model, workers=0)
        with pytest.raises(ValueError):
            PatchInferer(model, memory_budget=0)
        with pytest.raises(ValueError):
            PatchInferer(model, patch_batch=0)
        with pytest.raises(ValueError):
            PatchInferer(model, patch_batch_cap=0)
