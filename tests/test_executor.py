"""Cross-validation of the IR executor against the autograd engine, and
tests for the measured (§4.3-style) cost model."""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.graph.executor import GraphExecutor
from repro.hmms import HMMSPlanner
from repro.models import small_resnet, small_vgg
from repro.nn import CrossEntropyLoss
from repro.profile.measured import MeasuredCostModel
from repro.tensor import Tensor


def _to_float64(model):
    for param in model.parameters():
        param.data = param.data.astype(np.float64)
    for _, buf in model.named_buffers():
        buf.data = buf.data.astype(np.float64)
    return model


def _autograd_step(model, x, y):
    model.train()
    model.zero_grad()
    loss = CrossEntropyLoss()(model(Tensor(x, dtype=np.float64)), y)
    loss.backward()
    grads = [p.grad.copy() for _, p in model.named_parameters()]
    return loss.item(), grads


def _executor_step(model, x, y, batch):
    graph = build_training_graph(model, batch)
    params = GraphExecutor.parameters_from_model(graph, model)
    outputs = GraphExecutor(graph, params).run(x, y)
    ordered = [t for t in sorted(graph.tensors.values(), key=lambda t: t.id)
               if t.kind == "parameter"]
    grads = [outputs[f"grad({t.name})"] for t in ordered]
    return float(outputs["loss"][0]), grads, graph


class TestCrossValidation:
    """The strongest integration test in the suite: the symbolic IR +
    generated backward must agree with the autograd engine bit-for-bit
    (up to float64 rounding) on loss AND every parameter gradient."""

    @pytest.mark.parametrize("make", [small_vgg, small_resnet])
    def test_loss_and_gradients_match(self, make):
        rng = np.random.default_rng(0)
        model = _to_float64(make(num_classes=4, rng=rng))
        x = rng.standard_normal((3, 3, 32, 32))
        y = np.array([0, 2, 1])
        auto_loss, auto_grads = _autograd_step(model, x, y)
        exec_loss, exec_grads, _ = _executor_step(model, x, y, 3)
        assert exec_loss == pytest.approx(auto_loss, rel=1e-12)
        assert len(auto_grads) == len(exec_grads)
        for auto, executed in zip(auto_grads, exec_grads):
            np.testing.assert_allclose(executed, auto, rtol=1e-10, atol=1e-12)

    def test_split_model_graph_matches_split_autograd(self):
        """The split/concat IR path must agree with SplitRegion numerics."""
        rng = np.random.default_rng(1)
        base = _to_float64(small_vgg(num_classes=4, rng=rng))
        model = to_split_cnn(base, depth=0.5, num_splits=(2, 2))
        x = rng.standard_normal((2, 3, 32, 32))
        y = np.array([1, 3])
        auto_loss, auto_grads = _autograd_step(model, x, y)
        exec_loss, exec_grads, _ = _executor_step(model, x, y, 2)
        assert exec_loss == pytest.approx(auto_loss, rel=1e-10)
        for auto, executed in zip(auto_grads, exec_grads):
            np.testing.assert_allclose(executed, auto, rtol=1e-8, atol=1e-10)


class TestExecutorValidation:
    def test_missing_parameter_rejected(self, rng):
        model = small_vgg(num_classes=3, rng=rng)
        graph = build_training_graph(model, 2)
        with pytest.raises(KeyError):
            GraphExecutor(graph, {})

    def test_parameter_shape_mismatch(self, rng):
        model = small_vgg(num_classes=3, rng=rng)
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        first = next(iter(params))
        params[first] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            GraphExecutor(graph, params)

    def test_input_shape_mismatch(self, rng):
        model = small_vgg(num_classes=3, rng=rng)
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        with pytest.raises(ValueError):
            GraphExecutor(graph, params).run(np.zeros((5, 3, 32, 32)))

    def test_wrong_input_dtype_rejected(self, rng):
        """Regression: a float32 patch used to be silently upcast to
        float64, hiding the producer's dtype bug; both executors now
        reject it."""
        from repro.compile import CompiledPlan
        from repro.graph import build_inference_graph
        model = small_vgg(num_classes=3, rng=rng)
        graph = build_inference_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        patch = np.zeros((2, 3, 32, 32), dtype=np.float32)
        with pytest.raises(TypeError, match="float64"):
            GraphExecutor(graph, params).run(patch)
        with pytest.raises(TypeError, match="float64"):
            CompiledPlan(graph, params).run(patch)
        # The exact-dtype input still runs.
        out = GraphExecutor(graph, params).run(patch.astype(np.float64))
        assert "logits" in out

    def test_loss_requires_targets(self, rng):
        model = small_vgg(num_classes=3, rng=rng)
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        with pytest.raises(ValueError):
            GraphExecutor(graph, params).run(
                np.zeros((2, 3, 32, 32)), targets=None)


class TestMeasuredCostModel:
    @pytest.fixture(scope="class")
    def measured_setup(self):
        rng = np.random.default_rng(0)
        model = small_vgg(num_classes=3, input_size=16,
                          config=[8, "M", 16, "M"], rng=rng)
        graph = build_training_graph(model, 4)
        params = GraphExecutor.parameters_from_model(graph, model)
        x = rng.standard_normal((4, 3, 16, 16))
        y = np.array([0, 1, 2, 0])
        cost_model = MeasuredCostModel(graph, params, x, y, repetitions=3)
        return graph, cost_model

    def test_every_op_measured(self, measured_setup):
        graph, cost_model = measured_setup
        assert set(cost_model.measured_seconds) == {op.id for op in graph.ops}
        assert all(t >= 0 for t in cost_model.measured_seconds.values())

    def test_cost_uses_measurement(self, measured_setup):
        graph, cost_model = measured_setup
        for op in graph.ops:
            assert cost_model.cost(graph, op).seconds == \
                cost_model.measured_seconds[op.id]

    def test_conv_slower_than_relu(self, measured_setup):
        graph, cost_model = measured_setup
        conv = next(op for op in graph.forward_ops()
                    if op.op_type == "conv2d")
        relu = next(op for op in graph.forward_ops() if op.op_type == "relu")
        assert cost_model.cost(graph, conv).seconds > \
            cost_model.cost(graph, relu).seconds

    def test_planner_accepts_measured_model(self, measured_setup):
        graph, cost_model = measured_setup
        plan = HMMSPlanner(scheduler="hmms", cost_model=cost_model).plan(graph)
        assert plan.device_general_peak > 0

    def test_invalid_repetitions(self, measured_setup):
        graph, _ = measured_setup
        with pytest.raises(ValueError):
            MeasuredCostModel(graph, {}, np.zeros(1), repetitions=0)


class TestFinalGradientResolution:
    """The total gradient of a multiply-consumed parameter is the
    structural end of its grad_acc chain — not the highest tensor id.
    Ids carry no semantics; a renumbered-but-valid graph must still
    yield the right gradients."""

    @staticmethod
    def _renumber_tensors_descending(graph):
        """Remap tensor ids to max_id - old_id (a valid bijection that
        reverses every id-ordering relation)."""
        max_id = max(graph.tensors)
        mapping = {old: max_id - old for old in graph.tensors}
        graph.tensors = {mapping[old]: tensor
                         for old, tensor in graph.tensors.items()}
        for tensor in graph.tensors.values():
            tensor.id = mapping[tensor.id]
        for op in graph.ops:
            op.inputs = [mapping[i] for i in op.inputs]
            op.outputs = [mapping[i] for i in op.outputs]
            op.saved = [mapping[i] for i in op.saved]
            if op.inplace_of is not None:
                op.inplace_of = mapping[op.inplace_of]
        return graph

    @pytest.fixture()
    def split_case(self):
        rng = np.random.default_rng(3)
        base = small_vgg(num_classes=4, rng=rng)
        model = to_split_cnn(base, depth=0.5, num_splits=(2, 2))
        x = rng.standard_normal((2, 3, 32, 32))
        y = np.array([0, 2])
        return model, x, y

    def test_renumbered_graph_yields_identical_gradients(self, split_case):
        model, x, y = split_case
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        pristine = GraphExecutor(graph, params).run(x, y)

        renumbered = self._renumber_tensors_descending(
            build_training_graph(model, 2))
        renumbered.validate()            # still a well-formed graph
        for workers in (1, 4):
            outputs = GraphExecutor(renumbered, params,
                                    workers=workers).run(x, y)
            assert pristine.keys() == outputs.keys()
            for key in pristine:
                assert pristine[key].tobytes() == outputs[key].tobytes()

    def test_max_id_heuristic_would_pick_a_partial_gradient(self, split_case):
        """The bug the structural resolution fixes: after renumbering,
        the highest-id candidate is a partial contribution, not the
        accumulated total."""
        model, x, y = split_case
        graph = self._renumber_tensors_descending(
            build_training_graph(model, 2))
        executor = GraphExecutor(
            graph, GraphExecutor.parameters_from_model(
                build_training_graph(model, 2), model))
        mismatch = 0
        for param_name, tail_id in executor._final_grads.items():
            names = (f"grad({param_name})", f"grad_acc({param_name})")
            candidates = [t for t in graph.tensors.values()
                          if t.kind == "gradient" and t.name in names]
            by_max_id = max(candidates, key=lambda t: t.id)
            if by_max_id.id != tail_id:
                mismatch += 1
        # The split model shares every split-region conv parameter across
        # patches, so at least those chains expose the difference.
        assert mismatch > 0
