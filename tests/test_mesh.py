"""Tests for repro.mesh: topology, partitioning, simulation, hazards.

Determinism contract mirrors test_executor_parallel.py: merged outputs
are byte-identical for any device count, and measured step times are
bit-equal for any link-event tie-breaking order (seeded-shuffle fuzz).
"""

import copy
import dataclasses

import numpy as np
import pytest

from repro.analysis import analyze_mesh_plan, detect_mesh_hazards
from repro.core import to_split_cnn
from repro.experiments.distributed import (
    Fig11Result, _apportion_overhead,
)
from repro.distributed import TrainingProfile
from repro.graph import build_inference_graph
from repro.graph.executor import GraphExecutor
from repro.mesh import (
    MeshPartitioner, MeshSimulator, build_mesh, run_pipeline_numeric,
    run_spatial_numeric,
)
from repro.models import build_model
from repro.nn import init


@pytest.fixture(autouse=True)
def _fast_init():
    with init.fast_init():
        yield


def _small_split(num_splits=(2, 2), depth=0.5):
    return to_split_cnn(build_model("small_vgg"), depth=depth,
                        num_splits=num_splits)


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
class TestTopology:
    def test_ring_routes_shorter_direction(self):
        mesh = build_mesh(6, "ring", bandwidth_gbit=10)
        hops = mesh.route(0, 2)
        assert [link.name for link in hops] == ["ring:0->1", "ring:1->2"]
        hops = mesh.route(0, 5)  # backward is 1 hop, forward is 5
        assert [link.name for link in hops] == ["ring:0->5"]

    def test_ring_tie_breaks_forward(self):
        mesh = build_mesh(4, "ring", bandwidth_gbit=10)
        assert [link.name for link in mesh.route(0, 2)] == \
            ["ring:0->1", "ring:1->2"]

    def test_bus_is_single_shared_link(self):
        mesh = build_mesh(4, "bus", bandwidth_gbit=10)
        assert len(mesh.links) == 1
        assert [link.name for link in mesh.route(1, 3)] == ["bus"]
        assert [link.name for link in mesh.route(3, 1)] == ["bus"]

    def test_p2p_direct(self):
        mesh = build_mesh(3, "p2p", bandwidth_gbit=10)
        assert len(mesh.links) == 6  # directed pair per ordered pair
        assert [link.name for link in mesh.route(2, 0)] == ["p2p:2->0"]

    def test_two_device_ring_dedupes(self):
        mesh = build_mesh(2, "ring", bandwidth_gbit=10)
        assert sorted(link.name for link in mesh.links) == \
            ["ring:0->1", "ring:1->0"]

    def test_same_device_route_is_empty(self):
        mesh = build_mesh(4, "ring", bandwidth_gbit=10)
        assert mesh.route(2, 2) == []

    def test_wire_seconds(self):
        mesh = build_mesh(2, "bus", bandwidth_gbit=8.0, latency=1e-6,
                          efficiency=0.5)
        link = mesh.links[0]
        # 8 Gbit/s = 1e9 B/s; at 50% efficiency 1e6 bytes take 2 ms.
        assert link.wire_seconds(1_000_000) == pytest.approx(1e-6 + 2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_mesh(0)
        with pytest.raises(ValueError):
            build_mesh(2, "star")
        with pytest.raises(ValueError):
            build_mesh(2, "ring", bandwidth_gbit=0)


# ----------------------------------------------------------------------
# partitions: verifier-clean, hazard-clean, structurally sound
# ----------------------------------------------------------------------
class TestPartitions:
    @pytest.mark.parametrize("topology", ["ring", "bus", "p2p"])
    def test_data_partition_clean(self, topology):
        plan = MeshPartitioner(3, topology=topology).data(
            build_model("small_vgg"), batch_per_device=2)
        plan.verify()
        assert detect_mesh_hazards(plan) == []
        assert plan.global_batch == 6
        assert all(t.kind == "all_reduce" for t in plan.transfers)
        assert all(t.dst_op is None for t in plan.transfers)

    def test_data_single_device_has_no_transfers(self):
        plan = MeshPartitioner(1).data(build_model("small_vgg"), 2)
        assert plan.transfers == []

    def test_spatial_partition_clean(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        plan.verify()
        assert detect_mesh_hazards(plan) == []
        kinds = {t.kind for t in plan.transfers}
        assert kinds == {"halo_exchange", "gather"}
        roles = {a.device_id: a.role for a in plan.assignments}
        assert roles[0] == "tail"

    def test_spatial_requires_split_region(self):
        with pytest.raises(ValueError, match="SplitRegion"):
            MeshPartitioner(2).spatial(build_model("small_vgg"), batch=2)

    def test_pipeline_partition_clean(self):
        plan = MeshPartitioner(3).pipeline(build_model("small_vgg"),
                                           batch=2)
        plan.verify()
        assert detect_mesh_hazards(plan) == []
        assert len(plan.transfers) == 2
        assert all(t.kind == "activation" for t in plan.transfers)
        # activations flow stage s -> s+1
        assert [(t.src, t.dst) for t in plan.transfers] == [(0, 1), (1, 2)]

    def test_halo_bytes_positive_and_anchored(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        halos = [t for t in plan.transfers if t.kind == "halo_exchange"]
        assert halos, "2x2 split must exchange boundary strips"
        for halo in halos:
            assert halo.nbytes > 0
            assert halo.src_op == -1          # input halo: ready at start
            assert halo.dst_op is not None    # gated before first patch op
            assert halo.dst_tensor is not None

    def test_allreduce_ring_volume(self):
        # Ring: each device ships 2|g|(N-1)/N bytes per bucket to its
        # clockwise neighbor (the Patarasuk-Yuan volume).
        model = build_model("small_vgg")
        plan = MeshPartitioner(4, topology="ring").data(model, 2)
        graph = plan.assignments[0].graph
        params = graph.parameter_bytes()
        shipped_per_device = sum(t.nbytes for t in plan.transfers
                                 if t.src == 0)
        assert shipped_per_device == pytest.approx(2 * params * 3 / 4,
                                                   rel=0.01)


# ----------------------------------------------------------------------
# SCA104 / SCA105 mutation coverage
# ----------------------------------------------------------------------
class TestMeshHazards:
    def _mutate(self, plan, old, new):
        clone = copy.copy(plan)
        clone.transfers = [new if t.id == old.id else t
                           for t in plan.transfers]
        return clone

    def test_halo_anchored_after_first_use_is_sca105(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        halo = next(t for t in plan.transfers if t.kind == "halo_exchange")
        bad = dataclasses.replace(halo, dst_op=halo.dst_op + 7)
        findings = detect_mesh_hazards(self._mutate(plan, halo, bad))
        assert [f.code for f in findings] == ["SCA105"]

    def test_unanchored_halo_is_sca105(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        halo = next(t for t in plan.transfers if t.kind == "halo_exchange")
        bad = dataclasses.replace(halo, dst_op=None)
        findings = detect_mesh_hazards(self._mutate(plan, halo, bad))
        assert [f.code for f in findings] == ["SCA105"]

    def test_gather_after_join_is_sca104(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        gather = next(t for t in plan.transfers if t.kind == "gather")
        bad = dataclasses.replace(gather, dst_op=gather.dst_op + 1)
        findings = detect_mesh_hazards(self._mutate(plan, gather, bad))
        assert [f.code for f in findings] == ["SCA104"]

    def test_landing_on_produced_tensor_is_sca104(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        gather = next(t for t in plan.transfers if t.kind == "gather")
        tail = next(a for a in plan.assignments if a.role == "tail")
        produced = next(t.id for t in tail.graph.tensors.values()
                        if t.producer is not None)
        bad = dataclasses.replace(gather, dst_tensor=produced)
        findings = detect_mesh_hazards(self._mutate(plan, gather, bad))
        assert findings and findings[0].code == "SCA104"
        assert "local producer" in findings[0].message

    def test_missing_tensor_is_sca104(self):
        plan = MeshPartitioner(4).spatial(_small_split(), batch=2)
        gather = next(t for t in plan.transfers if t.kind == "gather")
        bad = dataclasses.replace(gather, dst_tensor=999_999)
        findings = detect_mesh_hazards(self._mutate(plan, gather, bad))
        assert [f.code for f in findings] == ["SCA104"]

    def test_report_wrapper(self):
        plan = MeshPartitioner(2).spatial(_small_split(), batch=2)
        report = analyze_mesh_plan(plan)
        assert report.ok
        assert report.num_ops == sum(len(a.graph.ops)
                                     for a in plan.assignments)


# ----------------------------------------------------------------------
# numeric byte-identity: distribution must not change the math
# ----------------------------------------------------------------------
class TestNumericIdentity:
    @pytest.fixture()
    def reference(self):
        split = _small_split()
        x = np.random.RandomState(0).rand(
            2, 3, split.input_size, split.input_size)
        graph = build_inference_graph(split, 2)
        executor = GraphExecutor(
            graph, GraphExecutor.parameters_from_model(graph, split))
        return split, x, executor.run(x)["logits"]

    @pytest.mark.parametrize("devices", [1, 2, 3, 4])
    def test_spatial_merged_bytes_identical(self, reference, devices):
        split, x, expected = reference
        plan = MeshPartitioner(devices).spatial(split, batch=2)
        logits = run_spatial_numeric(plan, x)["logits"]
        assert logits.tobytes() == expected.tobytes()

    def test_spatial_3x3_identity(self):
        split = _small_split(num_splits=(3, 3))
        x = np.random.RandomState(1).rand(
            2, 3, split.input_size, split.input_size)
        graph = build_inference_graph(split, 2)
        executor = GraphExecutor(
            graph, GraphExecutor.parameters_from_model(graph, split))
        expected = executor.run(x)["logits"]
        plan = MeshPartitioner(5).spatial(split, batch=2)
        assert run_spatial_numeric(plan, x)["logits"].tobytes() == \
            expected.tobytes()

    @pytest.mark.parametrize("devices", [2, 4])
    def test_pipeline_bytes_identical(self, devices):
        model = build_model("small_vgg")
        x = np.random.RandomState(2).rand(
            2, 3, model.input_size, model.input_size)
        graph = build_inference_graph(model, 2)
        executor = GraphExecutor(
            graph, GraphExecutor.parameters_from_model(graph, model))
        expected = executor.run(x)["logits"]
        plan = MeshPartitioner(devices).pipeline(model, batch=2)
        assert run_pipeline_numeric(plan, x)["logits"].tobytes() == \
            expected.tobytes()


# ----------------------------------------------------------------------
# simulator: FIFO links, contention, determinism fuzz
# ----------------------------------------------------------------------
class TestMeshSimulator:
    def test_bus_serializes_what_p2p_overlaps(self):
        model = build_model("small_vgg")
        part_bus = MeshPartitioner(4, topology="bus")
        part_p2p = MeshPartitioner(4, topology="p2p")
        bus_res = MeshSimulator(build_mesh(4, "bus", 1.0)).run(
            part_bus.data(model, 2))
        p2p_res = MeshSimulator(build_mesh(4, "p2p", 1.0)).run(
            part_p2p.data(model, 2))
        assert bus_res.step_seconds > p2p_res.step_seconds

    def test_step_monotone_in_bandwidth(self):
        model = build_model("small_vgg")
        plan = MeshPartitioner(4, topology="ring").data(model, 2)
        steps = []
        for gbit in (0.5, 2.0, 8.0, 32.0):
            mesh = build_mesh(4, "ring", bandwidth_gbit=gbit)
            steps.append(MeshSimulator(mesh).run(plan).step_seconds)
        assert steps == sorted(steps, reverse=True)

    def test_single_device_matches_gpu_simulator(self):
        from repro.sim import GPUSimulator
        model = build_model("small_vgg")
        plan = MeshPartitioner(1).data(model, 2)
        mesh_step = MeshSimulator(build_mesh(1)).run(plan).step_seconds
        solo = GPUSimulator(plan.assignments[0].spec).run(
            plan.assignments[0].plan)
        assert mesh_step == pytest.approx(solo.total_time, rel=1e-12)

    def test_link_accounting(self):
        plan = MeshPartitioner(4, topology="bus").data(
            build_model("small_vgg"), 2)
        result = MeshSimulator(build_mesh(4, "bus", 10.0)).run(plan)
        bus = result.links["bus"]
        assert bus.nbytes == sum(t.nbytes for t in plan.transfers)
        assert bus.transfers == len(plan.transfers)
        assert bus.busy_seconds <= result.step_seconds + 1e-12

    @pytest.mark.parametrize("strategy", ["data", "spatial", "pipeline"])
    @pytest.mark.parametrize("topology", ["ring", "bus", "p2p"])
    def test_shuffle_fuzz_identical_results(self, strategy, topology):
        part = MeshPartitioner(4, topology=topology)
        if strategy == "data":
            plan = part.data(build_model("small_vgg"), 2)
        elif strategy == "spatial":
            plan = part.spatial(_small_split(), batch=2)
        else:
            plan = part.pipeline(build_model("small_vgg"), batch=2)
        mesh = build_mesh(4, topology, bandwidth_gbit=2.0)
        baseline = MeshSimulator(mesh).run(plan)
        for seed in (0, 1, 7, 1234, 99991):
            shuffled = MeshSimulator(mesh, shuffle_seed=seed).run(plan)
            assert shuffled.step_seconds == baseline.step_seconds
            for device_id, measure in baseline.devices.items():
                other = shuffled.devices[device_id]
                assert other.end_seconds == measure.end_seconds
                assert other.mesh_wait == measure.mesh_wait
            for name, link in baseline.links.items():
                assert shuffled.links[name].busy_seconds == \
                    link.busy_seconds

    def test_mesh_smaller_than_plan_rejected(self):
        plan = MeshPartitioner(4).data(build_model("small_vgg"), 2)
        with pytest.raises(ValueError, match="devices"):
            MeshSimulator(build_mesh(2)).run(plan)

    def test_render_mentions_all_devices(self):
        plan = MeshPartitioner(2).data(build_model("small_vgg"), 2)
        text = MeshSimulator(build_mesh(2, "ring", 10.0)).run(plan).render()
        assert "dev0" in text and "dev1" in text and "step time" in text


# ----------------------------------------------------------------------
# satellite 1: speedup_at lookup + overhead apportioning guard
# ----------------------------------------------------------------------
class TestFig11Fixes:
    def _result(self):
        profile = TrainingProfile(name="m", batch_size=8,
                                  forward_seconds=0.1,
                                  backward_seconds=0.2,
                                  gradient_bytes=1 << 20)
        curve = [(0.5, 5.0), (1.0, 4.0), (2.0, 3.0)]
        return Fig11Result(baseline=profile, split=profile, curve=curve)

    def test_exact_lookup(self):
        assert self._result().speedup_at(1.0) == 4.0

    def test_nearest_within_tolerance(self):
        # float that went through arithmetic/parsing still resolves
        assert self._result().speedup_at(1.0000000001) == 4.0
        assert self._result().speedup_at(0.45) == 5.0

    def test_absent_point_raises(self):
        with pytest.raises(KeyError):
            self._result().speedup_at(16.0)
        with pytest.raises(KeyError):
            Fig11Result(baseline=None, split=None, curve=[]).speedup_at(1.0)

    def test_apportion_zero_kernel_guard(self):
        forward, backward = _apportion_overhead(0.0, 0.0, 0.5)
        assert forward == pytest.approx(0.25)
        assert backward == pytest.approx(0.25)

    def test_apportion_proportional(self):
        forward, backward = _apportion_overhead(1.0, 3.0, 0.4)
        assert forward == pytest.approx(1.1)
        assert backward == pytest.approx(3.3)


# ----------------------------------------------------------------------
# executor multi-input surface (added for mesh subgraphs)
# ----------------------------------------------------------------------
class TestRunWithInputs:
    def test_missing_input_raises(self):
        plan = MeshPartitioner(2).spatial(_small_split(), batch=2)
        tail = next(a for a in plan.assignments if a.role == "tail")
        executor = GraphExecutor(tail.graph, tail.params)
        with pytest.raises(ValueError, match="unbound graph inputs"):
            executor.run_with_inputs({})

    def test_unknown_input_raises(self):
        model = build_model("small_vgg")
        graph = build_inference_graph(model, 2)
        executor = GraphExecutor(
            graph, GraphExecutor.parameters_from_model(graph, model))
        input_id = next(t.id for t in graph.tensors.values()
                        if t.kind == "input")
        x = np.zeros((2, 3, model.input_size, model.input_size))
        with pytest.raises(ValueError, match="not graph inputs"):
            executor.run_with_inputs({input_id: x, 999_999: x})

    def test_shape_mismatch_raises(self):
        model = build_model("small_vgg")
        graph = build_inference_graph(model, 2)
        executor = GraphExecutor(
            graph, GraphExecutor.parameters_from_model(graph, model))
        input_id = next(t.id for t in graph.tensors.values()
                        if t.kind == "input")
        with pytest.raises(ValueError, match="shape"):
            executor.run_with_inputs({input_id: np.zeros((1, 3, 4, 4))})


# ----------------------------------------------------------------------
# measured fig11 twin (small model so the test stays fast)
# ----------------------------------------------------------------------
class TestMeasuredFig11:
    def test_small_sweep_brackets_and_monotone(self):
        from repro.experiments import run_fig11_measured
        result = run_fig11_measured(
            devices=4, topology="ring", base_batch=4, split_batch_factor=6,
            model_factory=lambda: build_model("small_vgg"),
            split_depth=0.5, dataset_size=10_000,
            bandwidths=(0.5, 2.0, 8.0, 32.0))
        result.check()
        result.assert_monotone()
        assert len(result.points) == 4
        for point in result.points:
            assert point.measured_speedup > 0

    def test_shuffle_seed_does_not_change_measurement(self):
        from repro.experiments import run_fig11_measured
        kwargs = dict(
            devices=3, topology="bus", base_batch=4, split_batch_factor=6,
            model_factory=lambda: build_model("small_vgg"),
            split_depth=0.5, dataset_size=10_000, bandwidths=(1.0, 8.0))
        plain = run_fig11_measured(**kwargs)
        shuffled = run_fig11_measured(shuffle_seed=42, **kwargs)
        for a, b in zip(plain.points, shuffled.points):
            assert a.measured_speedup == b.measured_speedup
            assert a.base_step_seconds == b.base_step_seconds
            assert a.split_step_seconds == b.split_step_seconds
