"""Unit tests for synthetic datasets and the DataLoader."""

import numpy as np
import pytest

from repro.data import DataLoader, GratingsDataset, ShapesDataset, make_dataset


class TestDatasets:
    @pytest.mark.parametrize("cls", [GratingsDataset, ShapesDataset])
    def test_deterministic_per_index(self, cls):
        ds = cls(num_samples=20, seed=3)
        x1, y1 = ds[7]
        x2, y2 = ds[7]
        np.testing.assert_array_equal(x1, x2)
        assert y1 == y2

    def test_shapes_and_dtype(self):
        ds = ShapesDataset(num_samples=10, image_size=16, channels=3)
        x, y = ds[0]
        assert x.shape == (3, 16, 16) and x.dtype == np.float32
        assert isinstance(y, int)

    def test_labels_balanced_cycle(self):
        ds = ShapesDataset(num_samples=12, num_classes=4)
        labels = [ds[i][1] for i in range(12)]
        assert labels == [i % 4 for i in range(12)]

    def test_different_seeds_differ(self):
        a = ShapesDataset(num_samples=5, seed=1)
        b = ShapesDataset(num_samples=5, seed=2)
        assert not np.array_equal(a[0][0], b[0][0])

    def test_out_of_range_raises(self):
        ds = ShapesDataset(num_samples=3)
        with pytest.raises(IndexError):
            ds[3]
        with pytest.raises(IndexError):
            ds[-1]

    def test_batch_materialization(self):
        ds = GratingsDataset(num_samples=10, image_size=8)
        x, y = ds.batch([0, 2, 4])
        assert x.shape == (3, 3, 8, 8)
        assert y.tolist() == [0, 2, 4]

    def test_all_shape_kinds_render(self):
        ds = ShapesDataset(num_samples=10, num_classes=10, noise=0.0)
        for i in range(10):
            x, _ = ds[i]
            assert np.isfinite(x).all()
            assert x.std() > 0  # a shape is actually drawn

    def test_noise_zero_is_clean(self):
        clean = ShapesDataset(num_samples=4, noise=0.0, seed=5)
        x1, _ = clean[1]
        x2, _ = clean[1]
        np.testing.assert_array_equal(x1, x2)

    def test_factory(self):
        assert isinstance(make_dataset("shapes", num_samples=2), ShapesDataset)
        assert isinstance(make_dataset("gratings", num_samples=2), GratingsDataset)
        with pytest.raises(ValueError):
            make_dataset("imagenet")


class TestDataLoader:
    def _ds(self, n=10):
        return ShapesDataset(num_samples=n, image_size=8, num_classes=2)

    def test_batch_count(self):
        assert len(DataLoader(self._ds(10), batch_size=3)) == 4
        assert len(DataLoader(self._ds(10), batch_size=3, drop_last=True)) == 3

    def test_iterates_all_samples(self):
        loader = DataLoader(self._ds(10), batch_size=3, shuffle=False)
        total = sum(len(y) for _, y in loader)
        assert total == 10

    def test_drop_last(self):
        loader = DataLoader(self._ds(10), batch_size=3, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert sizes == [3, 3, 3]

    def test_shuffle_changes_across_epochs(self):
        loader = DataLoader(self._ds(16), batch_size=16, shuffle=True, seed=0)
        _, y1 = next(iter(loader))
        _, y2 = next(iter(loader))
        assert not np.array_equal(y1, y2)

    def test_no_shuffle_is_ordered(self):
        loader = DataLoader(self._ds(6), batch_size=6, shuffle=False)
        _, y = next(iter(loader))
        assert y.tolist() == [0, 1, 0, 1, 0, 1]

    def test_same_seed_same_first_epoch(self):
        a = DataLoader(self._ds(16), batch_size=16, shuffle=True, seed=9)
        b = DataLoader(self._ds(16), batch_size=16, shuffle=True, seed=9)
        np.testing.assert_array_equal(next(iter(a))[1], next(iter(b))[1])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(4), batch_size=0)

    def test_yields_tensor_inputs(self):
        from repro.tensor import Tensor
        x, y = next(iter(DataLoader(self._ds(4), batch_size=2)))
        assert isinstance(x, Tensor)
        assert y.dtype == np.int64
