"""Tests for the CIFAR-10 binary loader and training-time augmentation."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset, CIFAR10_MEAN, CIFAR10_STD, Compose, DataLoader,
    RandomCropFlip, load_cifar10,
)
from repro.data.cifar import RECORD_BYTES, TEST_FILES, TRAIN_FILES


def write_fake_batch(path, num_records=10, seed=0):
    """Write a synthetic but format-valid CIFAR-10 binary batch."""
    rng = np.random.default_rng(seed)
    records = np.empty((num_records, RECORD_BYTES), dtype=np.uint8)
    records[:, 0] = rng.integers(0, 10, num_records)
    records[:, 1:] = rng.integers(0, 256, (num_records, RECORD_BYTES - 1))
    path.write_bytes(records.tobytes())
    return records


@pytest.fixture
def cifar_dir(tmp_path):
    for name in TRAIN_FILES:
        write_fake_batch(tmp_path / name, num_records=8,
                         seed=hash(name) % 1000)
    write_fake_batch(tmp_path / TEST_FILES[0], num_records=6, seed=99)
    return tmp_path


class TestLoader:
    def test_train_loads_all_batches(self, cifar_dir):
        dataset = load_cifar10(cifar_dir, train=True)
        assert len(dataset) == 5 * 8
        assert dataset.images.shape == (40, 3, 32, 32)
        assert dataset.images.dtype == np.float32

    def test_test_split(self, cifar_dir):
        dataset = load_cifar10(cifar_dir, train=False)
        assert len(dataset) == 6

    def test_normalization_applied(self, cifar_dir):
        raw = load_cifar10(cifar_dir, train=False, normalize=False)
        norm = load_cifar10(cifar_dir, train=False, normalize=True)
        assert raw.images.max() > 1.5          # still in [0, 255]
        expected = (raw.images / 255.0
                    - CIFAR10_MEAN.reshape(1, 3, 1, 1)) \
            / CIFAR10_STD.reshape(1, 3, 1, 1)
        np.testing.assert_allclose(norm.images, expected, rtol=1e-5)

    def test_labels_preserved(self, cifar_dir):
        records = write_fake_batch(cifar_dir / "test_batch.bin", 6, seed=99)
        dataset = load_cifar10(cifar_dir, train=False, normalize=False)
        np.testing.assert_array_equal(dataset.labels, records[:, 0])

    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cifar10(tmp_path)

    def test_corrupt_size_rejected(self, tmp_path):
        (tmp_path / "test_batch.bin").write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            load_cifar10(tmp_path, train=False)

    def test_bad_label_rejected(self, tmp_path):
        bad = np.zeros(RECORD_BYTES, dtype=np.uint8)
        bad[0] = 42
        (tmp_path / "test_batch.bin").write_bytes(bad.tobytes())
        with pytest.raises(ValueError):
            load_cifar10(tmp_path, train=False)

    def test_dataloader_integration(self, cifar_dir):
        dataset = load_cifar10(cifar_dir, train=False)
        loader = DataLoader(dataset, batch_size=4, shuffle=False)
        x, y = next(iter(loader))
        assert x.shape == (4, 3, 32, 32)
        assert y.dtype == np.int64


class TestArrayDataset:
    def test_protocol(self):
        dataset = ArrayDataset(np.zeros((4, 3, 8, 8), np.float32),
                               np.arange(4, dtype=np.int64))
        x, y = dataset[2]
        assert x.shape == (3, 8, 8) and y == 2
        bx, by = dataset.batch([0, 3])
        assert bx.shape == (2, 3, 8, 8) and by.tolist() == [0, 3]
        with pytest.raises(IndexError):
            dataset[4]

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 3, 8, 8), np.float32),
                         np.zeros(3, np.int64))
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 8, 8), np.float32),
                         np.zeros(2, np.int64))

    def test_subset(self):
        dataset = ArrayDataset(np.zeros((10, 3, 4, 4), np.float32),
                               np.arange(10, dtype=np.int64))
        sub = dataset.subset(4, seed=1)
        assert len(sub) == 4
        with pytest.raises(ValueError):
            dataset.subset(11)


class TestAugmentation:
    def test_shape_preserved(self, rng):
        batch = rng.standard_normal((6, 3, 32, 32)).astype(np.float32)
        out = RandomCropFlip(pad=4, seed=0)(batch)
        assert out.shape == batch.shape

    def test_crops_come_from_padded_plane(self):
        batch = np.ones((4, 1, 8, 8), dtype=np.float32)
        out = RandomCropFlip(pad=2, flip_probability=0.0, seed=0)(batch)
        # Every pixel is either original (1) or zero padding.
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_no_pad_no_flip_is_identity(self, rng):
        batch = rng.standard_normal((3, 2, 8, 8)).astype(np.float32)
        out = RandomCropFlip(pad=0, flip_probability=0.0)(batch)
        np.testing.assert_array_equal(out, batch)

    def test_always_flip(self, rng):
        batch = rng.standard_normal((3, 2, 8, 8)).astype(np.float32)
        out = RandomCropFlip(pad=0, flip_probability=1.0, seed=0)(batch)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_deterministic_under_seed(self, rng):
        batch = rng.standard_normal((5, 3, 16, 16)).astype(np.float32)
        a = RandomCropFlip(pad=2, seed=7)(batch)
        b = RandomCropFlip(pad=2, seed=7)(batch)
        np.testing.assert_array_equal(a, b)

    def test_stream_advances_between_calls(self, rng):
        batch = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        transform = RandomCropFlip(pad=3, seed=7)
        assert not np.array_equal(transform(batch), transform(batch))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomCropFlip(pad=-1)
        with pytest.raises(ValueError):
            RandomCropFlip(flip_probability=1.5)
        with pytest.raises(ValueError):
            RandomCropFlip()(np.zeros((3, 8, 8)))

    def test_compose(self, rng):
        batch = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        double = Compose([lambda b: b * 2, lambda b: b + 1])
        np.testing.assert_allclose(double(batch), batch * 2 + 1)

    def test_loader_applies_transform(self):
        from repro.data import ShapesDataset
        dataset = ShapesDataset(num_samples=8, image_size=8, num_classes=2)
        marker = lambda b: b * 0 + 7.0
        loader = DataLoader(dataset, batch_size=4, shuffle=False,
                            transform=marker)
        x, _ = next(iter(loader))
        np.testing.assert_allclose(x.numpy(), 7.0)
