"""Tests for the independent static plan verifier (repro.hmms.verify).

The verifier shares no replay code with the simulator, so these tests
exercise both directions of the cross-check: clean plans from every
scheduler must verify error-free, and targeted single-field corruptions
must be detected with the right invariant family named.
"""

import copy

import numpy as np
import pytest

from repro.graph import build_training_graph
from repro.hmms import (
    HMMSPlanner, PlanVerificationError, VerificationReport, verify_plan,
)
from repro.hmms.verify import (
    FAMILY_COMPLETENESS, FAMILY_OVERLAP, FAMILY_REFCOUNT, FAMILY_RESIDENCY,
    FAMILY_TRANSFER, INVARIANT_FAMILIES,
)
from repro.models import small_resnet, small_vgg
from repro.sim import GPUSimulator


@pytest.fixture(scope="module")
def vgg_graph():
    return build_training_graph(small_vgg(rng=np.random.default_rng(0)), 16)


@pytest.fixture(scope="module")
def resnet_graph():
    return build_training_graph(small_resnet(rng=np.random.default_rng(1)), 8)


@pytest.fixture(scope="module")
def hmms_plan(vgg_graph):
    return HMMSPlanner(scheduler="hmms").plan(vgg_graph)


def fresh_plan(graph, **kwargs):
    kwargs.setdefault("scheduler", "hmms")
    return HMMSPlanner(**kwargs).plan(graph)


class TestCleanPlans:
    @pytest.mark.parametrize("scheduler", ["none", "layerwise", "hmms"])
    @pytest.mark.parametrize("grouped", [False, True])
    def test_all_schedulers_verify_clean(self, vgg_graph, scheduler, grouped):
        plan = fresh_plan(vgg_graph, scheduler=scheduler, grouped_sync=grouped)
        report = verify_plan(plan)
        assert report.ok, report.render()
        assert report.families_violated() == ()

    def test_resnet_verifies_clean(self, resnet_graph):
        report = verify_plan(fresh_plan(resnet_graph))
        assert report.ok, report.render()

    def test_no_offload_plan_is_stall_free(self, vgg_graph):
        report = verify_plan(fresh_plan(vgg_graph, scheduler="none"))
        assert report.stall_free
        assert report.num_transfers == 0

    def test_layerwise_is_not_stall_free(self, vgg_graph):
        """The vDNN baseline stalls (Figure 8) — the verifier must agree,
        but only as warnings: stalls are a performance bug, not safety."""
        report = verify_plan(fresh_plan(vgg_graph, scheduler="layerwise"))
        assert not report.stall_free
        assert report.ok
        assert report.warnings

    def test_strict_stalls_promotes_to_error(self, vgg_graph):
        plan = fresh_plan(vgg_graph, scheduler="layerwise")
        report = verify_plan(plan, strict_stalls=True)
        assert not report.ok
        assert FAMILY_TRANSFER in report.families_violated()

    def test_verifier_agrees_with_simulator_on_stalls(self, vgg_graph):
        """Cross-check: the FIFO link replay flags a stall iff the
        independent event-driven simulator measures one."""
        for scheduler in ("none", "layerwise", "hmms"):
            plan = fresh_plan(vgg_graph, scheduler=scheduler)
            report = verify_plan(plan)
            result = GPUSimulator().run(plan)
            assert report.stall_free == (result.stall_time == 0.0), scheduler


class TestReportApi:
    def test_report_metadata(self, hmms_plan):
        report = verify_plan(hmms_plan)
        assert isinstance(report, VerificationReport)
        assert report.num_ops == len(hmms_plan.schedule)
        assert report.num_tsos == len(hmms_plan.assignment.tsos)
        assert report.num_transfers == len(hmms_plan.offload_plan.transfers)

    def test_render_names_every_family(self, hmms_plan):
        text = verify_plan(hmms_plan).render()
        for family in INVARIANT_FAMILIES:
            assert family in text
        assert "PASS" in text

    def test_render_fail_and_raise(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        plan.schedule[0].allocs_before.extend(plan.schedule[0].allocs_before)
        report = verify_plan(plan)
        assert "FAIL" in report.render()
        with pytest.raises(PlanVerificationError) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.report is report

    def test_violation_str_names_family(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        plan.schedule[0].allocs_before.extend(plan.schedule[0].allocs_before)
        violation = verify_plan(plan).errors[0]
        assert FAMILY_RESIDENCY in str(violation)


class TestCapacity:
    def test_capacity_violation(self, hmms_plan):
        report = verify_plan(hmms_plan, capacity=1 << 20)
        assert not report.ok
        assert report.families_violated() == (FAMILY_OVERLAP,)

    def test_capacity_ok(self, hmms_plan):
        report = verify_plan(hmms_plan, capacity=64 << 30)
        assert report.ok


class TestTargetedCorruptions:
    """One unit test per corruption shape; the zoo-wide mutation matrix
    lives in test_pipeline_fuzz.py."""

    def test_unknown_tso_rejected(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        plan.schedule[0].allocs_before.append(999_999)
        report = verify_plan(plan)
        assert FAMILY_RESIDENCY in report.families_violated()

    def test_wrong_op_index_rejected(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        plan.schedule[3].op_index = 7
        report = verify_plan(plan)
        assert FAMILY_COMPLETENESS in report.families_violated()

    def test_offload_of_unallocated_tso(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        entry = next(e for e in plan.schedule if e.offload_starts)
        tso_id = entry.offload_starts[0]
        alloc_entry = next(e for e in plan.schedule
                           if tso_id in e.allocs_before)
        alloc_entry.allocs_before.remove(tso_id)
        report = verify_plan(plan)
        assert FAMILY_RESIDENCY in report.families_violated()

    def test_leaked_tso_rejected(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        entry = next(e for e in plan.schedule if e.frees_after)
        entry.frees_after.pop()
        report = verify_plan(plan)
        assert FAMILY_REFCOUNT in report.families_violated()

    def test_missing_prefetch_rejected(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        for entry in plan.schedule:
            entry.prefetch_allocs_before.clear()
            entry.prefetch_starts.clear()
            entry.prefetch_syncs_before.clear()
        report = verify_plan(plan)
        assert FAMILY_COMPLETENESS in report.families_violated()

    def test_understated_peak_rejected(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        plan.device_general_peak //= 2
        report = verify_plan(plan)
        assert FAMILY_OVERLAP in report.families_violated()

    def test_sync_on_unissued_offload(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        entry = next(e for e in plan.schedule if e.offload_starts)
        tso_id = entry.offload_starts[0]
        entry.offload_starts.remove(tso_id)
        report = verify_plan(plan)
        assert FAMILY_TRANSFER in report.families_violated()


class TestIntegrationHooks:
    def test_planner_verify_flag(self, vgg_graph):
        plan = HMMSPlanner(scheduler="hmms", verify=True).plan(vgg_graph)
        assert plan.device_general_peak > 0

    def test_simulator_verify_flag_clean(self, hmms_plan):
        result = GPUSimulator(verify=True).run(hmms_plan)
        assert result.total_time > 0

    def test_simulator_verify_flag_rejects_corrupt_plan(self, hmms_plan):
        plan = copy.deepcopy(hmms_plan)
        entry = next(e for e in plan.schedule if e.frees_after)
        entry.frees_after.pop()
        with pytest.raises(PlanVerificationError):
            GPUSimulator(verify=True).run(plan)
