"""Tests for model checkpointing and graph export/analysis utilities."""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.graph.export import (
    MEMORY_BOUND_TYPES, GraphStats, graph_from_dict, graph_stats,
    graph_to_dict, load_graph, save_graph, to_dot, to_networkx,
)
from repro.models import small_resnet, small_vgg
from repro.nn.serialization import (
    load_model, load_state_dict, save_model, save_state_dict,
)
from repro.tensor import Tensor


class TestSerialization:
    def test_roundtrip_restores_outputs(self, rng, tmp_path):
        model = small_vgg(num_classes=4, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 32, 32)).astype(np.float32))
        model.eval()
        expected = model(x).numpy()

        path = tmp_path / "checkpoint.npz"
        save_model(model, path)
        fresh = small_vgg(num_classes=4, rng=np.random.default_rng(999))
        fresh.eval()
        assert not np.allclose(fresh(x).numpy(), expected)
        load_model(fresh, path)
        np.testing.assert_allclose(fresh(x).numpy(), expected, rtol=1e-6)

    def test_buffers_roundtrip(self, rng, tmp_path):
        model = small_resnet(num_classes=3, rng=rng)
        for _, buf in model.named_buffers():
            buf.data = buf.data + 5.0
        path = tmp_path / "ckpt.npz"
        save_model(model, path)
        fresh = small_resnet(num_classes=3, rng=rng)
        load_model(fresh, path)
        for name, buf in fresh.named_buffers():
            assert (buf.data >= 4.0).all(), name

    def test_state_dict_roundtrip(self, tmp_path):
        state = {"a.weight": np.arange(6.0).reshape(2, 3)}
        path = tmp_path / "state.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        np.testing.assert_array_equal(loaded["a.weight"], state["a.weight"])

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state_dict({"__repro_meta__": np.zeros(1)}, tmp_path / "x.npz")

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(1))
        with pytest.raises(ValueError):
            load_state_dict(path)

    def test_checkpoint_via_shared_base_model(self, rng, tmp_path):
        """Split-CNN shares weights with its base model by reference, so
        checkpointing the *base* captures everything a split-model training
        run learned — the §3.3 deployment path."""
        base = small_vgg(num_classes=4, rng=rng)
        split = to_split_cnn(base, depth=0.5, num_splits=(2, 2))
        for parameter in split.parameters():
            parameter.data = parameter.data + 0.01  # "training"
        path = tmp_path / "base.npz"
        save_model(base, path)
        fresh = small_vgg(num_classes=4, rng=np.random.default_rng(7))
        load_model(fresh, path)
        x = Tensor(rng.standard_normal((1, 3, 32, 32)).astype(np.float32))
        base.eval(), fresh.eval()
        np.testing.assert_allclose(fresh(x).numpy(), base(x).numpy(),
                                   rtol=1e-6)


@pytest.fixture(scope="module")
def graph():
    return build_training_graph(small_resnet(rng=np.random.default_rng(0)), 4)


class TestNetworkxExport:
    def test_is_dag(self, graph):
        import networkx as nx
        dag = to_networkx(graph)
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.number_of_nodes() == len(graph.ops)

    def test_edges_carry_tensor_bytes(self, graph):
        dag = to_networkx(graph)
        for _, _, data in dag.edges(data=True):
            assert data["nbytes"] > 0

    def test_topological_order_matches_serialization(self, graph):
        import networkx as nx
        dag = to_networkx(graph)
        position = {op.id: i for i, op in enumerate(graph.ops)}
        for source, target in dag.edges:
            assert position[source] < position[target]


class TestDot:
    def test_contains_ops_and_edges(self, graph):
        dot = to_dot(graph, max_ops=50)
        assert dot.startswith("digraph")
        assert "conv" in dot
        assert "->" in dot
        assert "truncated" in dot  # this graph has > 50 ops

    def test_no_truncation_marker_when_small(self, graph):
        dot = to_dot(graph, max_ops=10 ** 6)
        assert "truncated" not in dot


class TestStats:
    def test_basic_counts(self, graph):
        stats = graph_stats(graph)
        assert stats.num_ops == len(graph.ops)
        assert stats.num_forward_ops + stats.num_backward_ops == stats.num_ops
        assert stats.parameter_bytes > 0
        assert stats.saved_bytes > 0
        assert stats.critical_path_length > 10

    def test_memory_bound_mix(self, graph):
        stats = graph_stats(graph)
        # ResNets are full of BN/ReLU/add: a large memory-bound fraction is
        # the paper's §2.2.1 premise.
        assert stats.memory_bound_fraction > 0.3
        assert stats.memory_bound_ops + stats.compute_bound_ops == stats.num_ops

    def test_histogram_sorted_desc(self, graph):
        stats = graph_stats(graph)
        counts = [count for _, count in stats.op_type_histogram]
        assert counts == sorted(counts, reverse=True)

    def test_widest_tensor_identified(self, graph):
        stats = graph_stats(graph)
        largest = max(graph.tensors.values(), key=lambda t: t.nbytes)
        assert stats.widest_tensor_bytes == largest.nbytes

    def test_memory_bound_types_are_known_ops(self):
        from repro.graph.registry import REGISTRY
        assert MEMORY_BOUND_TYPES <= set(REGISTRY)


class TestGraphJsonRoundtrip:
    def test_dict_roundtrip_is_structural_identity(self, graph):
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.name == graph.name
        assert [op.id for op in restored.ops] == [op.id for op in graph.ops]
        for original, twin in zip(graph.ops, restored.ops):
            assert (twin.op_type, twin.inputs, twin.outputs, twin.attrs,
                    twin.phase, twin.saved, twin.forward_of,
                    twin.inplace_of) == (
                original.op_type, original.inputs, original.outputs,
                original.attrs, original.phase, original.saved,
                original.forward_of, original.inplace_of)
        assert set(restored.tensors) == set(graph.tensors)
        for tensor_id, tensor in graph.tensors.items():
            twin = restored.tensors[tensor_id]
            assert (twin.name, twin.shape, twin.kind, twin.producer,
                    twin.consumers) == (
                tensor.name, tensor.shape, tensor.kind, tensor.producer,
                tensor.consumers)

    def test_split_graph_survives_file_roundtrip(self, tmp_path):
        model = to_split_cnn(small_vgg(rng=np.random.default_rng(0)),
                             depth=0.5, num_splits=(2, 2))
        original = build_training_graph(model, 2)
        path = tmp_path / "split.json"
        save_graph(original, path)
        restored = load_graph(path)
        assert len(restored.ops) == len(original.ops)
        restored.validate()
        # The restored graph can keep growing: id counters resume past
        # the loaded maxima instead of colliding with them.
        fresh = restored.add_tensor("probe", (1,))
        assert fresh.id not in original.tensors
