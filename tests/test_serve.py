"""Tests for the serving runtime: queue, batcher, engine, server, bench."""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import build_inference_graph, build_training_graph
from repro.hmms import (
    POOL_DEVICE_PARAM, HMMSPlanner, PlanCache, verify_plan,
)
from repro.models import build_model, small_resnet, small_vgg
from repro.nn import init
from repro.serve import (
    AdmissionQueue, BenchConfig, DenseRequest, DynamicBatcher,
    OversizeRequestError, Request, Server, ServingEngine, ServingMetrics,
    percentile, poisson_arrivals, run_bench,
)


def make_engine(**kwargs) -> ServingEngine:
    """Small engine: CIFAR-scale model, capacity search capped at 8."""
    kwargs.setdefault("batch_cap", 8)
    model = small_resnet(rng=np.random.default_rng(0))
    return ServingEngine(model, **kwargs)


# ----------------------------------------------------------------------
# Inference graphs (builder + planner)
# ----------------------------------------------------------------------
class TestInferenceGraph:
    def test_stops_at_logits_without_backward(self):
        with init.fast_init():
            model = build_model("small_vgg")
        graph = build_inference_graph(model, 4)
        assert not graph.backward_ops()
        assert all(op.phase == "forward" for op in graph.ops)
        assert not any(op.op_type == "cross_entropy" for op in graph.ops)
        names = {t.name for t in graph.tensors.values()}
        assert "logits" in names and "loss" not in names

    def test_marks_nothing_saved(self):
        with init.fast_init():
            model = build_model("small_vgg")
        graph = build_inference_graph(model, 4)
        assert not graph.saved_tensors()
        training = build_training_graph(model, 4)
        assert training.saved_tensors()   # the training twin does save

    def test_dropout_vanishes(self):
        with init.fast_init():
            model = build_model("vgg11", dataset="imagenet",
                                num_classes=1000)
        inference = build_inference_graph(model, 2)
        assert not any(op.op_type == "dropout" for op in inference.ops)
        training = build_training_graph(model, 2)
        assert any(op.op_type == "dropout" for op in training.ops)

    def test_inference_peak_below_training_peak(self):
        with init.fast_init():
            model = build_model("small_vgg")
        planner = HMMSPlanner(scheduler="none")
        inference = planner.plan(build_inference_graph(model, 8))
        training = planner.plan(build_training_graph(model, 8))
        assert inference.device_peak < training.device_peak

    @pytest.mark.parametrize("name", ["alexnet", "vgg11", "resnet18"])
    @pytest.mark.parametrize("split", [False, True])
    def test_zoo_inference_plans_verifier_clean(self, name, split):
        with init.fast_init():
            model = build_model(name, dataset="imagenet", num_classes=1000)
            if split:
                model = to_split_cnn(model, depth=0.5, num_splits=(2, 2))
        graph = build_inference_graph(model, 4)
        planner = HMMSPlanner(scheduler="hmms")
        plan = planner.plan(graph)
        # Inference planning short-circuits offloading: nothing outlives
        # the forward pass, so there is nothing to hide a transfer behind.
        assert plan.offload_fraction_used == 0.0
        assert not plan.offload_plan.transfers
        report = verify_plan(plan, device=planner.device,
                             cost_model=planner.cost_model)
        assert report.ok, report.render()
        # No gradient/error TSOs: the device pools hold only forward state.
        for tso in plan.assignment.tsos.values():
            kinds = {graph.tensor(t).kind for t in tso.tensor_ids}
            assert not any("gradient" in kind for kind in kinds)
            if tso.pool == POOL_DEVICE_PARAM:
                assert kinds == {"parameter"}


# ----------------------------------------------------------------------
# Queue + batcher edge cases
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_rejects_when_full(self):
        queue = AdmissionQueue(max_depth=2, max_request_size=8)
        assert queue.offer(Request(id=0, arrival_time=0.0))
        assert queue.offer(Request(id=1, arrival_time=0.1))
        assert not queue.offer(Request(id=2, arrival_time=0.2))
        assert len(queue) == 2

    def test_oversize_request_raises_with_clear_error(self):
        queue = AdmissionQueue(max_depth=4, max_request_size=8)
        with pytest.raises(OversizeRequestError, match="16 images"):
            queue.offer(Request(id=0, arrival_time=0.0, size=16))

    def test_queue_full_counted_by_server(self):
        engine = make_engine()
        server = Server(engine, queue_depth=1)
        assert server.submit(Request(id=0, arrival_time=0.0))
        assert not server.submit(Request(id=1, arrival_time=0.0))
        assert server.metrics.rejected_queue_full == 1
        assert server.metrics.arrived == 2 and server.metrics.admitted == 1


class TestDynamicBatcher:
    def test_flush_timer_vs_full_batch(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        queue.offer(Request(id=0, arrival_time=1.0))
        assert batcher.ready_at(queue) == pytest.approx(1.01)
        for i in range(1, 4):
            queue.offer(Request(id=i, arrival_time=1.0 + i * 1e-3))
        # Full batch: ready the moment the fourth request was admitted.
        assert batcher.ready_at(queue) == pytest.approx(1.003)

    def test_batch_respects_image_cap(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        for i in range(3):
            queue.offer(Request(id=i, arrival_time=0.0, size=2))
        batch = batcher.form_batch(queue, 0.01, ServingMetrics())
        assert [r.id for r in batch] == [0, 1]
        assert len(queue) == 1            # third request waits

    def test_deadline_expiry_while_queued(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        metrics = ServingMetrics()
        queue.offer(Request(id=0, arrival_time=0.0, deadline=0.004))
        queue.offer(Request(id=1, arrival_time=0.001))
        batch = batcher.form_batch(queue, 0.01, metrics)
        assert [r.id for r in batch] == [1]
        assert metrics.expired == 1

    def test_empty_flush_on_timeout(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        metrics = ServingMetrics()
        queue.offer(Request(id=0, arrival_time=0.0, deadline=0.002))
        batch = batcher.form_batch(queue, 0.01, metrics)
        assert batch == [] and metrics.expired == 1 and not len(queue)

    def test_server_counts_empty_flushes(self):
        engine = make_engine()
        server = Server(engine, flush_timeout=0.01)
        arrivals = [Request(id=0, arrival_time=0.0, deadline=0.002)]
        metrics = server.run(arrivals)
        assert metrics.empty_flushes == 1
        assert metrics.completed_requests == 0
        assert engine.executed_batches == 0


# ----------------------------------------------------------------------
# Engine: discovery, bucketing, cache, numeric execution
# ----------------------------------------------------------------------
class TestServingEngine:
    def test_max_batch_discovered_on_dyadic_grid(self):
        engine = make_engine()
        assert engine.max_batch == 8      # capped by batch_cap
        assert engine.bucket(3) == 4 and engine.bucket(4) == 4
        with pytest.raises(ValueError, match="exceeds the discovered"):
            engine.bucket(9)

    def test_split_model_discovers_larger_batch(self):
        # Splitting lowers forward peaks, so against the same 16 GiB
        # device the split model's discovered serving capacity beats the
        # unsplit baseline — Figure 10's gain on the serving side.
        base = ServingEngine.from_zoo("vgg11")
        split = ServingEngine.from_zoo("vgg11", split=4)
        assert split.max_batch > base.max_batch

    def test_every_executed_plan_is_verified(self):
        engine = make_engine()
        engine.execute([Request(id=0, arrival_time=0.0, size=3)])
        assert engine.replans == 1
        assert engine.plans_verified == engine.replans

    def test_steady_state_hits_cache_zero_replans_after_warmup(self):
        engine = make_engine()
        config = BenchConfig(rps=200, duration=1.0, flush_timeout=0.002)
        run_bench(engine, config)
        warm_plans = engine.replans
        assert warm_plans > 0
        metrics = run_bench(engine, BenchConfig(rps=200, duration=1.0,
                                                flush_timeout=0.002, seed=1))
        assert engine.replans == warm_plans   # zero replans after warmup
        assert engine.cache.hits > 0
        assert metrics.completed_requests > 0

    def test_numeric_execution_returns_logits(self):
        engine = make_engine(numeric=True)
        requests = [Request(id=0, arrival_time=0.0, size=2),
                    Request(id=1, arrival_time=0.0, size=1)]
        latency = engine.execute(requests)
        assert latency > 0
        assert engine.logits_for(requests[0]).shape == (2, 10)
        assert engine.logits_for(requests[1]).shape == (1, 10)
        assert np.isfinite(engine.logits_for(requests[0])).all()

    def test_latency_grows_with_bucket(self):
        engine = make_engine()
        small = engine.entry_for(1).latency
        large = engine.entry_for(8).latency
        assert large > small


class TestPlanCache:
    def test_hit_miss_accounting(self):
        cache = PlanCache(capacity=4)
        assert cache.get_or_build("a", lambda: 1) == 1
        assert cache.get_or_build("a", lambda: 2) == 1
        assert cache.snapshot() == (1, 1, 1)

    def test_fifo_eviction(self):
        cache = PlanCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.get_or_build(key, lambda k=key: k)
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_rejects_none_values(self):
        cache = PlanCache()
        with pytest.raises(ValueError):
            cache.get_or_build("a", lambda: None)


# ----------------------------------------------------------------------
# Bench loop
# ----------------------------------------------------------------------
class TestBench:
    def test_poisson_trace_is_deterministic(self):
        config = BenchConfig(rps=100, duration=2.0, seed=7)
        first = poisson_arrivals(config)
        second = poisson_arrivals(config)
        assert [r.arrival_time for r in first] \
            == [r.arrival_time for r in second]
        assert all(r.arrival_time < config.duration for r in first)

    def test_bench_is_deterministic(self):
        results = []
        for _ in range(2):
            engine = make_engine()
            metrics = run_bench(engine, BenchConfig(rps=300, duration=1.0))
            results.append((metrics.completed_requests, metrics.batches,
                            metrics.latency.p(99)))
        assert results[0] == results[1]

    def test_overload_rejects_instead_of_queueing_forever(self):
        # Single-image batches cap service at ~1/latency req/s; offer far
        # more and the bounded queue must start rejecting.
        engine = make_engine()
        config = BenchConfig(rps=50_000, duration=0.1, queue_depth=16,
                             flush_timeout=0.0, max_batch_images=1)
        metrics = run_bench(engine, config)
        assert metrics.rejected_queue_full > 0
        assert metrics.completed_requests > 0
        # Reject-on-full keeps the queue (and so queueing delay) bounded.
        assert metrics.queue_depth_p95() <= 16

    def test_deadlines_drop_stale_requests(self):
        engine = make_engine()
        config = BenchConfig(rps=5000, duration=0.5, deadline=0.002,
                             flush_timeout=0.005)
        metrics = run_bench(engine, config)
        assert metrics.expired > 0
        completed = metrics.completed_requests
        assert completed + metrics.expired \
            + metrics.rejected_queue_full == metrics.arrived


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 100) == 100.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_histogram_buckets(self):
        from repro.serve import LatencyHistogram
        hist = LatencyHistogram()
        hist.record(0.0005)     # <= 1 ms
        hist.record(0.003)      # <= 4 ms
        hist.record(5.0)        # > 1024 ms
        assert hist.buckets[1] == 1
        assert hist.buckets[4] == 1
        assert hist.buckets[None] == 1
        assert "> 1024 ms" in hist.render()


# ----------------------------------------------------------------------
# Dispatch timestamps, deadline boundary, request accounting
# ----------------------------------------------------------------------
class TestFullBatchCrossingTime:
    def test_admissions_past_threshold_do_not_drift_ready_at(self):
        # Four size-1 requests fill the batch at 1.003; two stragglers
        # admitted much later must not move the dispatch timestamp.
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        for i in range(4):
            queue.offer(Request(id=i, arrival_time=1.0 + i * 1e-3))
        assert batcher.ready_at(queue) == pytest.approx(1.003)
        queue.offer(Request(id=4, arrival_time=1.5))
        queue.offer(Request(id=5, arrival_time=2.0))
        assert batcher.ready_at(queue) == pytest.approx(1.003)

    def test_crossing_is_the_request_that_completes_the_batch(self):
        # Sizes 3 + 2 cross a 4-image threshold at the second admission,
        # even though a third request arrives afterwards.
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        queue.offer(Request(id=0, arrival_time=0.1, size=3))
        queue.offer(Request(id=1, arrival_time=0.5, size=2))
        queue.offer(Request(id=2, arrival_time=0.9, size=1))
        assert batcher.ready_at(queue) == pytest.approx(0.5)

    def test_partial_batch_still_uses_flush_timer(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        queue.offer(Request(id=0, arrival_time=1.0))
        queue.offer(Request(id=1, arrival_time=1.2))
        assert batcher.ready_at(queue) == pytest.approx(1.01)


class TestDeadlineBoundary:
    """Pinned semantics: the deadline instant itself is still servable
    (``expired_at`` is strictly greater-than)."""

    def test_expired_at_is_strict(self):
        request = Request(id=0, arrival_time=0.0, deadline=5.0)
        assert not request.expired_at(4.999)
        assert not request.expired_at(5.0)
        assert request.expired_at(5.0 + 1e-9)

    def test_no_deadline_never_expires(self):
        request = Request(id=0, arrival_time=0.0)
        assert not request.expired_at(float("inf"))

    def test_dispatch_exactly_at_deadline_is_served(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        metrics = ServingMetrics()
        queue.offer(Request(id=0, arrival_time=0.0, deadline=0.01))
        batch = batcher.form_batch(queue, 0.01, metrics)
        assert [r.id for r in batch] == [0]
        assert metrics.expired == 0


class TestRequestAccounting:
    """arrived == rejected_queue_full + expired + completed + still_queued
    after every bench run — enforced inside run_bench via
    ServingMetrics.check_accounting."""

    def test_check_accounting_raises_on_imbalance(self):
        metrics = ServingMetrics()
        metrics.arrived = 3
        metrics.completed_requests = 1
        with pytest.raises(AssertionError, match="accounting imbalance"):
            metrics.check_accounting()
        metrics.check_accounting(still_queued=2)   # balanced: no raise

    @pytest.mark.parametrize("config", [
        BenchConfig(rps=300, duration=1.0),
        BenchConfig(rps=50_000, duration=0.1, queue_depth=16,
                    flush_timeout=0.0, max_batch_images=1),
        BenchConfig(rps=5000, duration=0.5, deadline=0.002,
                    flush_timeout=0.005),
    ])
    def test_invariant_holds_across_bench_regimes(self, config):
        # run_bench calls check_accounting itself; re-check explicitly so
        # the invariant is asserted even if the driver changes.
        metrics = run_bench(make_engine(), config)
        metrics.check_accounting(still_queued=0)
        assert metrics.arrived == (metrics.rejected_queue_full
                                   + metrics.expired
                                   + metrics.completed_requests)


class TestExpiredAwareReadyAt:
    """Regression: requests already expired at ``now`` must count toward
    neither the full-batch threshold nor the flush-timer anchor."""

    def test_expired_requests_do_not_complete_a_batch(self):
        # Three of four queued requests are corpses at now=1.0; the one
        # survivor cannot fill a 4-image batch, so the crossing must be
        # None and ready_at falls back to the survivor's flush timer.
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        for i in range(3):
            queue.offer(Request(id=i, arrival_time=0.1 * i, deadline=0.5))
        queue.offer(Request(id=3, arrival_time=0.9))
        now = 1.0
        assert batcher._full_batch_crossing(queue, now) is None
        assert batcher.ready_at(queue, now) == pytest.approx(0.91)

    def test_expired_oldest_does_not_anchor_flush_timer(self):
        # Pre-fix the expired head anchored the timer at 0.0 + 0.01 —
        # an instant that can only produce an empty flush.
        queue = AdmissionQueue(max_depth=16, max_request_size=8)
        batcher = DynamicBatcher(max_batch_images=8, flush_timeout=0.01)
        queue.offer(Request(id=0, arrival_time=0.0, deadline=0.05))
        queue.offer(Request(id=1, arrival_time=0.2))
        assert batcher.ready_at(queue, now=0.1) == pytest.approx(0.21)

    def test_all_expired_returns_now_for_immediate_purge(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=8)
        batcher = DynamicBatcher(max_batch_images=8, flush_timeout=0.01)
        queue.offer(Request(id=0, arrival_time=0.0, deadline=0.001))
        queue.offer(Request(id=1, arrival_time=0.0, deadline=0.002))
        now = 1.0
        assert batcher.ready_at(queue, now) == now
        metrics = ServingMetrics()
        assert batcher.form_batch(queue, now, metrics) == []
        assert metrics.expired == 2 and not len(queue)

    def test_crossing_skips_corpses_but_counts_survivors(self):
        # Sizes 2 (expired) + 2 + 2: the *third* request completes the
        # 4-image batch once the corpse is skipped.
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        queue.offer(Request(id=0, arrival_time=0.0, size=2, deadline=0.1))
        queue.offer(Request(id=1, arrival_time=0.3, size=2))
        queue.offer(Request(id=2, arrival_time=0.5, size=2))
        assert batcher.ready_at(queue, now=0.6) == pytest.approx(0.5)

    def test_default_now_preserves_no_deadline_semantics(self):
        # Callers without a clock (the original single-tenant tests) get
        # the legacy behavior: nothing is treated as expired.
        queue = AdmissionQueue(max_depth=16, max_request_size=4)
        batcher = DynamicBatcher(max_batch_images=4, flush_timeout=0.01)
        for i in range(4):
            queue.offer(Request(id=i, arrival_time=float(i), deadline=0.5))
        assert batcher.ready_at(queue) == pytest.approx(3.0)


class TestDiscoveryServesTheSameGraph:
    """Regression: the Figure-10 capacity search must plan the graph the
    engine will actually execute.  With ``compile_plans`` the served
    graph is compiled (BN folded, chains fused); pre-fix discovery
    planned the uncompiled twin, so the searched capacity belonged to a
    different graph."""

    def _spy_plans(self, engine):
        seen = []
        original = engine.planner.plan

        def spying(graph):
            seen.append(graph)
            return original(graph)

        engine.planner.plan = spying
        return seen

    def test_discovery_plans_the_compiled_graph(self):
        engine = make_engine(compile_plans=True)
        seen = self._spy_plans(engine)
        _ = engine.max_batch
        assert seen                        # discovery planned something
        served_ops = sorted(op.op_type
                            for op in engine.entry_for(1).graph.ops)
        discovery_ops = sorted(op.op_type for op in seen[0].ops)
        assert discovery_ops == served_ops
        # The compiled graph is actually different from the raw builder
        # output — otherwise this test couldn't catch the regression.
        raw_ops = sorted(
            op.op_type
            for op in build_inference_graph(engine.model, 1).ops)
        assert discovery_ops != raw_ops

    def test_memory_budget_bounds_discovery(self):
        # A fleet hands each engine a slice of the device; the search
        # must respect the slice, not the whole card.
        whole = make_engine()
        budget = whole.entry_for(whole.max_batch).plan.device_peak - 1
        capped = make_engine(memory_budget=budget)
        assert capped.max_batch < whole.max_batch

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="memory budget"):
            _ = make_engine(memory_budget=1).max_batch


class TestNumericLogitsOwnership:
    """Regression: ``_run_numeric`` must copy each request's logits
    slice.  A view would pin the whole padded bucket-sized buffer (and
    through it the executor's value table) alive until the next batch."""

    def test_logits_own_their_memory(self):
        engine = make_engine(numeric=True)
        requests = [Request(id=0, arrival_time=0.0, size=2),
                    Request(id=1, arrival_time=0.0, size=1)]
        engine.execute(requests)
        for request in requests:
            assert engine.logits_for(request).base is None

    def test_logits_survive_release_of_intermediates(self):
        engine = make_engine(numeric=True)
        request = Request(id=0, arrival_time=0.0, size=3)
        engine.execute([request])
        before = engine.logits_for(request).copy()
        # execute() already released intermediates; the retained logits
        # must be stable, finite data — not a view of freed storage.
        after = engine.logits_for(request)
        assert np.array_equal(before, after)
        assert np.isfinite(after).all()


class TestQueuePeekAndPendingImages:
    """Regression: ``peek`` raises on empty (no Optional hole) and
    ``pending_images`` is an O(1) counter that tracks offers and pops."""

    def test_peek_empty_raises(self):
        queue = AdmissionQueue(max_depth=4, max_request_size=8)
        with pytest.raises(IndexError, match="empty AdmissionQueue"):
            queue.peek()

    def test_peek_returns_head_without_removal(self):
        queue = AdmissionQueue(max_depth=4, max_request_size=8)
        queue.offer(Request(id=0, arrival_time=0.0))
        queue.offer(Request(id=1, arrival_time=0.1))
        assert queue.peek().id == 0
        assert len(queue) == 2            # unchanged

    def test_pending_images_tracks_mixed_sizes(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=8)
        sizes = [3, 1, 5, 2, 8, 1]
        for i, size in enumerate(sizes):
            queue.offer(Request(id=i, arrival_time=0.0, size=size))
            assert queue.pending_images == sum(r.size for r in queue)
        while len(queue):
            queue.pop()
            assert queue.pending_images == sum(r.size for r in queue)
        assert queue.pending_images == 0

    def test_rejected_offers_do_not_count(self):
        queue = AdmissionQueue(max_depth=1, max_request_size=8)
        queue.offer(Request(id=0, arrival_time=0.0, size=2))
        assert not queue.offer(Request(id=1, arrival_time=0.0, size=5))
        assert queue.pending_images == 2


class TestEngineParallelExecutor:
    def test_workers_produce_byte_identical_logits(self):
        serial = make_engine(numeric=True)
        parallel = make_engine(numeric=True, workers=4)
        requests = [Request(id=0, arrival_time=0.0, size=2),
                    Request(id=1, arrival_time=0.0, size=1)]
        serial.execute(requests)
        parallel.execute(requests)
        for request in requests:
            assert serial.logits_for(request).tobytes() \
                == parallel.logits_for(request).tobytes()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            make_engine(workers=0)


# ----------------------------------------------------------------------
# Percentile boundary semantics (p=0 / p=100 regression pins)
# ----------------------------------------------------------------------
class TestPercentileBoundaries:
    """p=0 must return the minimum: ``ceil(0) == 0`` used to index
    ``ordered[-1]`` — the *maximum* — via negative indexing."""

    def test_p0_returns_minimum(self):
        assert percentile([5.0, 1.0, 9.0], 0) == 1.0

    def test_p100_returns_maximum(self):
        assert percentile([5.0, 1.0, 9.0], 100) == 9.0

    def test_single_sample_any_p(self):
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.0], p) == 7.0

    def test_nearest_rank_returns_actual_samples(self):
        samples = [0.4, 0.1, 0.3, 0.2]
        for p in (0, 25, 50, 75, 100):
            assert percentile(samples, p) in samples

    def test_queue_depth_p95_is_exact_sample(self):
        metrics = ServingMetrics()
        metrics.queue_depths = list(range(1, 21))
        depth = metrics.queue_depth_p95()
        # Nearest-rank over 20 integer samples: rank ceil(0.95*20)=19.
        assert depth == 19
        assert metrics.queue_depth_p95() == percentile(
            metrics.queue_depths, 95)

    def test_queue_depth_p95_empty_is_none(self):
        assert ServingMetrics().queue_depth_p95() is None


# ----------------------------------------------------------------------
# Dense requests: derived size, admission, dispatch-alone batching
# ----------------------------------------------------------------------
class TestDenseRequest:
    def test_size_is_the_patch_total(self):
        request = DenseRequest(id=0, arrival_time=0.0,
                               image_hw=(256, 256), grid=(4, 4))
        assert request.size == 16
        assert request.patches == 16

    def test_constructor_size_is_overridden(self):
        # Counting a dense request as 1 is the accounting bug; the
        # derived size wins over whatever the caller passes.
        request = DenseRequest(id=0, arrival_time=0.0, size=1,
                               image_hw=(64, 64), grid=(2, 3))
        assert request.size == 6

    def test_validation(self):
        with pytest.raises(ValueError, match="image_hw"):
            DenseRequest(id=0, arrival_time=0.0, image_hw=(0, 64))
        with pytest.raises(ValueError, match="grid"):
            DenseRequest(id=0, arrival_time=0.0, image_hw=(64, 64),
                         grid=(0, 2))
        with pytest.raises(ValueError, match="overlap"):
            DenseRequest(id=0, arrival_time=0.0, image_hw=(64, 64),
                         overlap=-1)


class TestDenseAdmission:
    def test_dense_exempt_from_oversize_but_weighed(self):
        queue = AdmissionQueue(max_depth=8, max_request_size=4)
        with pytest.raises(OversizeRequestError):
            queue.offer(Request(id=0, arrival_time=0.0, size=16))
        dense = DenseRequest(id=1, arrival_time=0.0,
                             image_hw=(256, 256), grid=(4, 4))
        assert queue.offer(dense)         # streamed, never batched whole
        assert queue.pending_images == 16

    def test_max_pending_images_bounds_dense_work(self):
        queue = AdmissionQueue(max_depth=8, max_request_size=4,
                               max_pending_images=20)
        dense = DenseRequest(id=0, arrival_time=0.0,
                             image_hw=(256, 256), grid=(4, 4))
        assert queue.offer(dense)
        assert not queue.offer(DenseRequest(
            id=1, arrival_time=0.0, image_hw=(256, 256), grid=(4, 4)))
        assert queue.offer(Request(id=2, arrival_time=0.0, size=4))
        assert not queue.offer(Request(id=3, arrival_time=0.0, size=1))
        queue.pop()                       # dense head leaves
        assert queue.offer(Request(id=4, arrival_time=0.0, size=4))

    def test_bound_validation(self):
        with pytest.raises(ValueError, match="max_pending_images"):
            AdmissionQueue(max_depth=4, max_request_size=4,
                           max_pending_images=0)


class TestDenseBatching:
    def test_dense_dispatches_alone_in_arrival_order(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=8)
        batcher = DynamicBatcher(max_batch_images=8, flush_timeout=0.01)
        metrics = ServingMetrics()
        queue.offer(Request(id=0, arrival_time=0.0))
        queue.offer(Request(id=1, arrival_time=0.1))
        queue.offer(DenseRequest(id=2, arrival_time=0.2,
                                 image_hw=(64, 64), grid=(2, 2)))
        queue.offer(Request(id=3, arrival_time=0.3))
        first = batcher.form_batch(queue, 1.0, metrics)
        assert [r.id for r in first] == [0, 1]   # stops at the dense head
        second = batcher.form_batch(queue, 1.0, metrics)
        assert [r.id for r in second] == [2]     # dense alone
        third = batcher.form_batch(queue, 1.0, metrics)
        assert [r.id for r in third] == [3]

    def test_dense_head_is_its_own_crossing(self):
        queue = AdmissionQueue(max_depth=16, max_request_size=8)
        batcher = DynamicBatcher(max_batch_images=8, flush_timeout=0.5)
        queue.offer(DenseRequest(id=0, arrival_time=1.0,
                                 image_hw=(64, 64), grid=(2, 2)))
        # A dense head is a full batch by itself: ready at arrival, not
        # at the flush timer.
        assert batcher.ready_at(queue) == pytest.approx(1.0)


class TestMixedServing:
    """Satellite fuzz: random classification + dense traffic through the
    full Server loop, exact accounting at the end."""

    def make_dense_engine(self, **kwargs):
        kwargs.setdefault("batch_cap", 8)
        model = small_vgg(rng=np.random.default_rng(0))
        return ServingEngine(model, **kwargs)

    def test_dense_request_served_end_to_end(self):
        engine = self.make_dense_engine()
        server = Server(engine, flush_timeout=0.005)
        dense = DenseRequest(id=0, arrival_time=0.0,
                             image_hw=(64, 64), grid=(2, 2))
        metrics = server.run([dense])
        metrics.check_accounting()
        assert metrics.completed_requests == 1
        assert engine.executed_images == 4          # the patch total
        assert engine.plans_verified == engine.cache.misses

    def test_numeric_dense_output_matches_inferer(self):
        engine = self.make_dense_engine(numeric=True)
        dense = DenseRequest(id=0, arrival_time=0.0,
                             image_hw=(64, 64), grid=(2, 2))
        engine.execute([dense])
        output = engine.dense_output_for(dense)
        assert output.shape == (64, 8, 8)

    def test_engine_rejects_dense_mixed_into_a_batch(self):
        engine = self.make_dense_engine()
        dense = DenseRequest(id=0, arrival_time=0.0,
                             image_hw=(64, 64), grid=(2, 2))
        with pytest.raises(ValueError, match="alone"):
            engine.execute([dense, Request(id=1, arrival_time=0.0)])

    def test_fuzz_mixed_traffic_accounting(self):
        rng = np.random.default_rng(7)
        engine = self.make_dense_engine()
        server = Server(engine, flush_timeout=0.004, queue_depth=6,
                        max_pending_images=24)
        arrivals, clock = [], 0.0
        for i in range(60):
            clock += float(rng.exponential(0.0002))
            if rng.random() < 0.25:
                hw = (32, 32) if rng.random() < 0.5 else (48, 48)
                arrivals.append(DenseRequest(
                    id=i, arrival_time=clock, image_hw=hw, grid=(2, 2)))
            else:
                arrivals.append(Request(
                    id=i, arrival_time=clock,
                    size=int(rng.integers(1, 5))))
        metrics = server.run(arrivals)
        metrics.check_accounting()        # nothing lost, nothing doubled
        assert metrics.arrived == 60
        assert metrics.completed_requests + metrics.rejected_queue_full \
            == 60
        assert metrics.completed_requests > 0
        assert metrics.rejected_queue_full > 0    # the bound really bit
        completed_images = sum(
            r.size for r in arrivals if r.completion_time is not None)
        assert engine.executed_images == completed_images
        assert engine.plans_verified == engine.cache.misses
        assert server.queue.pending_images == 0
