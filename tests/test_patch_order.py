"""Tests for split-region patch scheduling order (§3.2 scheduling freedom)."""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.graph.builder import GraphBuilder
from repro.graph.executor import GraphExecutor
from repro.hmms import HMMSPlanner
from repro.models import small_vgg
from repro.profile import CostModel


@pytest.fixture(scope="module")
def split_model():
    return to_split_cnn(small_vgg(rng=np.random.default_rng(0)),
                        depth=0.5, num_splits=(2, 2))


class TestPatchOrder:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(batch_size=4, patch_order="diagonal")

    def test_both_orders_validate(self, split_model):
        for order in ("depth_first", "breadth_first"):
            graph = build_training_graph(split_model, 4, patch_order=order)
            graph.validate()

    def test_same_op_multiset(self, split_model):
        """Scheduling changes order, not the set of operations."""
        depth = build_training_graph(split_model, 4,
                                     patch_order="depth_first")
        breadth = build_training_graph(split_model, 4,
                                       patch_order="breadth_first")
        count = lambda g: sorted(op.op_type for op in g.ops)
        assert count(depth) == count(breadth)

    def test_same_total_time(self, split_model):
        cost = CostModel()
        depth = build_training_graph(split_model, 4,
                                     patch_order="depth_first")
        breadth = build_training_graph(split_model, 4,
                                       patch_order="breadth_first")
        assert cost.total_time(depth) == pytest.approx(
            cost.total_time(breadth), rel=1e-9)

    def test_depth_first_uses_less_memory(self, split_model):
        """The point of the option: with offloading active, depth-first
        lets each patch's tensors drain over the link before the next
        patch produces its own (without offloading both schedules keep
        every saved tensor resident, so they tie)."""
        depth = HMMSPlanner(scheduler="hmms").plan(
            build_training_graph(split_model, 32,
                                 patch_order="depth_first"))
        breadth = HMMSPlanner(scheduler="hmms").plan(
            build_training_graph(split_model, 32,
                                 patch_order="breadth_first"))
        # At this miniature scale the gap is small (see the ablation
        # benchmark for the VGG-19-scale 1.9 vs 3.2 GiB difference).
        assert depth.device_general_peak <= breadth.device_general_peak

    def test_breadth_first_numerics_match(self, split_model):
        """Both schedules compute the same training step."""
        rng = np.random.default_rng(3)
        for param in split_model.parameters():
            param.data = param.data.astype(np.float64)
        x = rng.standard_normal((2, 3, 32, 32))
        y = np.array([1, 2])
        losses = {}
        for order in ("depth_first", "breadth_first"):
            graph = build_training_graph(split_model, 2, patch_order=order)
            params = GraphExecutor.parameters_from_model(graph, split_model)
            outputs = GraphExecutor(graph, params).run(x, y)
            losses[order] = float(outputs["loss"][0])
        assert losses["depth_first"] == pytest.approx(
            losses["breadth_first"], rel=1e-12)


class TestSingleMemoryStream:
    def test_one_stream_serializes_all_transfers(self):
        from repro.profile import P100_NVLINK
        from repro.sim import GPUSimulator
        model = small_vgg(rng=np.random.default_rng(0))
        graph = build_training_graph(model, 32)
        device = P100_NVLINK.with_(num_memory_streams=1)
        plan = HMMSPlanner(device=device, scheduler="hmms").plan(graph)
        result = GPUSimulator(device).run(plan)
        streams = {e.stream for e in result.events
                   if e.kind in ("offload", "prefetch")}
        assert streams == {"mem0"}
