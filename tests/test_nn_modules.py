"""Unit tests for Module machinery and layer modules."""

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool2d, Linear,
    MaxPool2d, Module, ModuleList, Parameter, ReLU, Sequential,
)
from repro.tensor import Tensor


class Child(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))

    def forward(self, x):
        return x * self.weight


class Parent(Module):
    def __init__(self):
        super().__init__()
        self.child = Child()
        self.bias = Parameter(np.zeros(3))
        self.register_buffer("running", Tensor(np.ones(3)))

    def forward(self, x):
        return self.child(x) + self.bias


class TestRegistration:
    def test_named_parameters_nested(self):
        names = dict(Parent().named_parameters())
        assert set(names) == {"child.weight", "bias"}

    def test_buffers_not_parameters(self):
        parent = Parent()
        assert "running" in dict(parent.named_buffers())
        assert "running" not in dict(parent.named_parameters())

    def test_reassignment_replaces_registration(self):
        parent = Parent()
        parent.bias = Parameter(np.ones(4))
        assert dict(parent.named_parameters())["bias"].shape == (4,)

    def test_assign_non_module_removes_child(self):
        parent = Parent()
        parent.child = None
        assert "child.weight" not in dict(parent.named_parameters())

    def test_modules_iterates_tree(self):
        kinds = [type(m).__name__ for m in Parent().modules()]
        assert kinds == ["Parent", "Child"]

    def test_num_parameters(self):
        assert Parent().num_parameters() == 6


class TestModesAndState:
    def test_train_eval_propagates(self):
        parent = Parent()
        parent.eval()
        assert not parent.child.training
        parent.train()
        assert parent.child.training

    def test_zero_grad(self):
        parent = Parent()
        for p in parent.parameters():
            p.grad = np.ones_like(p.data)
        parent.zero_grad()
        assert all(p.grad is None for p in parent.parameters())

    def test_state_dict_roundtrip(self):
        a, b = Parent(), Parent()
        for p in a.parameters():
            p.data = p.data + 5.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.child.weight.data, 6.0)

    def test_state_dict_strict_mismatch(self):
        parent = Parent()
        state = parent.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            parent.load_state_dict(state)

    def test_state_dict_shape_mismatch(self):
        parent = Parent()
        state = parent.state_dict()
        state["bias"] = np.zeros(7)
        with pytest.raises(ValueError):
            parent.load_state_dict(state)

    def test_state_dict_copies(self):
        parent = Parent()
        state = parent.state_dict()
        state["bias"][:] = 99
        assert parent.bias.data[0] == 0


class TestContainers:
    def test_sequential_forward_order(self):
        seq = Sequential(ReLU(), Flatten())
        out = seq(Tensor(np.array([[[-1.0, 2.0]]])))
        np.testing.assert_allclose(out.numpy(), [[0.0, 2.0]])

    def test_sequential_indexing_and_slicing(self):
        relu, flat = ReLU(), Flatten()
        seq = Sequential(relu, flat)
        assert seq[0] is relu
        assert isinstance(seq[0:1], Sequential)
        assert len(seq[0:1]) == 1

    def test_sequential_append(self):
        seq = Sequential(ReLU())
        seq.append(Flatten())
        assert len(seq) == 2

    def test_sequential_registers_parameters(self):
        seq = Sequential(Linear(4, 2), Linear(2, 1))
        assert len(seq.parameters()) == 4

    def test_module_list(self):
        items = ModuleList([ReLU(), ReLU()])
        assert len(items) == 2
        items.append(ReLU())
        assert len(list(items)) == 3
        assert isinstance(items[1], ReLU)


class TestLayers:
    def test_linear_shapes_and_bias(self, rng):
        layer = Linear(8, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((5, 8)).astype(np.float32)))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self, rng):
        layer = Linear(8, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_module_matches_functional(self, rng):
        layer = Conv2d(2, 4, 3, stride=2, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        from repro.tensor import conv2d
        expected = conv2d(x, layer.weight, layer.bias, stride=(2, 2),
                          padding=((1, 1), (1, 1)))
        np.testing.assert_allclose(layer(x).numpy(), expected.numpy())

    def test_maxpool_module(self, rng):
        layer = MaxPool2d(2)
        out = layer(Tensor(rng.standard_normal((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 5, 5))
        out = GlobalAvgPool2d()(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out.numpy()[..., 0, 0],
                                   x.mean(axis=(2, 3)), rtol=1e-5)

    def test_dropout_respects_training_flag(self, rng):
        layer = Dropout(0.9, seed=0)
        x = Tensor(np.ones((10, 10)))
        layer.eval()
        np.testing.assert_allclose(layer(x).numpy(), 1.0)
        layer.train()
        assert (layer(x).numpy() == 0).any()

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_train_normalizes(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3 + 1)
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 3, 3), 10.0, dtype=np.float32))
        bn(x)
        assert (bn.running_mean.data > 0).all()

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(rng.standard_normal((16, 2, 4, 4)).astype(np.float32) * 2 + 3))
        bn.eval()
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32) * 2 + 3
        out = bn(Tensor(x)).numpy()
        assert abs(out.mean()) < 0.3

    def test_eval_is_deterministic_affine(self, rng):
        bn = BatchNorm2d(2)
        bn.eval()
        x = rng.standard_normal((3, 2, 4, 4)).astype(np.float32)
        out1 = bn(Tensor(x)).numpy()
        out2 = bn(Tensor(x)).numpy()
        np.testing.assert_allclose(out1, out2)

    def test_train_gradcheck(self, rng):
        from conftest import gradcheck
        bn = BatchNorm2d(3)
        bn.weight.data = rng.standard_normal(3)
        bn.bias.data = rng.standard_normal(3)

        def fn(t):
            fresh = BatchNorm2d(3)
            fresh.weight.data = bn.weight.data.astype(np.float64)
            fresh.bias.data = bn.bias.data.astype(np.float64)
            return fresh(t)

        gradcheck(fn, rng.standard_normal((4, 3, 3, 3)), rtol=1e-3, atol=1e-5)

    def test_eval_gradcheck(self, rng):
        from conftest import gradcheck
        bn = BatchNorm2d(2)
        bn.running_mean.data = rng.standard_normal(2)
        bn.running_var.data = rng.uniform(0.5, 2.0, 2)
        bn.eval()

        def fn(t):
            fresh = BatchNorm2d(2)
            fresh.running_mean.data = bn.running_mean.data.astype(np.float64)
            fresh.running_var.data = bn.running_var.data.astype(np.float64)
            fresh.eval()
            return fresh(t)

        gradcheck(fn, rng.standard_normal((3, 2, 4, 4)), rtol=1e-4)

    def test_weight_and_bias_get_grads(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None
