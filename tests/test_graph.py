"""Tests for the computation-graph IR, builder and backward generation."""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import (
    Graph, build_forward_graph, build_training_graph, compute_lifetimes,
)
from repro.graph.ir import TensorValue
from repro.models import resnet18, small_resnet, small_vgg
from repro.nn import init


@pytest.fixture
def vgg_graph(rng):
    return build_training_graph(small_vgg(rng=rng), batch_size=4)


@pytest.fixture
def resnet_graph(rng):
    return build_training_graph(small_resnet(rng=rng), batch_size=4)


class TestIr:
    def test_add_tensor_and_op(self):
        graph = Graph("t")
        a = graph.add_tensor("a", (2, 3))
        b = graph.add_tensor("b", (2, 3))
        op = graph.add_op("op", "relu", [a], [b])
        assert b.producer == op.id
        assert op.id in a.consumers
        assert a.nbytes == 24

    def test_double_producer_rejected(self):
        graph = Graph("t")
        a = graph.add_tensor("a", (1,))
        b = graph.add_tensor("b", (1,))
        graph.add_op("op1", "relu", [a], [b])
        with pytest.raises(ValueError):
            graph.add_op("op2", "relu", [a], [b])

    def test_validate_detects_use_before_def(self):
        graph = Graph("t")
        a = graph.add_tensor("a", (1,))
        b = graph.add_tensor("b", (1,))
        op1 = graph.add_op("use", "relu", [b], [a])
        c = graph.add_tensor("c", (1,))
        graph.add_op("def", "relu", [c], [b])
        with pytest.raises(ValueError):
            graph.validate()

    def test_saved_marks_consumer(self):
        graph = Graph("t")
        a = graph.add_tensor("a", (1,))
        b = graph.add_tensor("b", (1,))
        op = graph.add_op("op", "relu", [a], [b], saved=[b])
        assert op.id in b.consumers


class TestForwardBuilder:
    def test_validates(self, vgg_graph):
        vgg_graph.validate()

    def test_final_shape_is_loss(self, rng):
        graph = build_forward_graph(small_vgg(num_classes=5, rng=rng), 4)
        loss_op = graph.ops[-1]
        assert loss_op.op_type == "cross_entropy"
        assert graph.tensors[loss_op.outputs[0]].shape == (1,)

    def test_without_loss_ends_at_classifier(self, rng):
        graph = build_forward_graph(small_vgg(num_classes=5, rng=rng), 4,
                                    with_loss=False)
        assert graph.ops[-1].op_type == "linear"

    def test_parameters_cached_per_module(self, rng):
        graph = build_forward_graph(small_vgg(rng=rng), 4)
        conv_weights = [t for t in graph.tensors.values()
                        if t.kind == "parameter" and "conv" in t.name
                        and "weight" in t.name]
        assert len(conv_weights) == 6  # one per conv layer, not per use

    def test_conv_saves_input(self, vgg_graph):
        conv_ops = [op for op in vgg_graph.forward_ops()
                    if op.op_type == "conv2d"]
        for op in conv_ops:
            assert op.saved == [op.inputs[0]]

    def test_relu_is_inplace_and_saves_output(self, vgg_graph):
        relu_ops = [op for op in vgg_graph.forward_ops()
                    if op.op_type == "relu"]
        for op in relu_ops:
            assert op.inplace_of == op.inputs[0]
            assert op.saved == [op.outputs[0]]

    def test_workspace_only_for_spatial_convs(self, rng):
        with init.fast_init():
            graph = build_forward_graph(
                resnet18(dataset="imagenet", num_classes=1000), 4)
        for op in graph.forward_ops():
            if op.op_type != "conv2d":
                continue
            if op.attrs["kernel"] == (1, 1):
                assert op.workspace_bytes == 0
            else:
                assert op.workspace_bytes > 0

    def test_workspace_capped(self, rng):
        with init.fast_init():
            graph = build_forward_graph(
                resnet18(dataset="imagenet", num_classes=1000), 256,
                workspace_cap=1 << 28)
        assert max(op.workspace_bytes for op in graph.ops) <= 1 << 28

    def test_residual_add_present(self, resnet_graph):
        adds = [op for op in resnet_graph.forward_ops() if op.op_type == "add"]
        assert len(adds) == 3  # one per BasicBlock


class TestMemoryEfficientBn:
    def test_relu_following_bn_recomputes(self, rng):
        with init.fast_init():
            graph = build_forward_graph(
                resnet18(dataset="imagenet", num_classes=1000,
                         memory_efficient=True), 4)
        bn_ops = [op for op in graph.forward_ops() if op.op_type == "batchnorm"]
        recompute = [op for op in bn_ops if op.attrs["recompute"]]
        kept = [op for op in bn_ops if not op.attrs["recompute"]]
        # bn1 (pre-ReLU) recomputes; bn2 (pre-add) keeps its input.
        assert recompute and kept
        for op in recompute:
            assert op.saved == []
        for op in kept:
            assert op.saved == [op.inputs[0]]

    def test_saved_bytes_shrink(self, rng):
        with init.fast_init():
            plain = build_forward_graph(
                resnet18(dataset="imagenet", num_classes=1000), 4)
            efficient = build_forward_graph(
                resnet18(dataset="imagenet", num_classes=1000,
                         memory_efficient=True), 4)
        plain_bytes = sum(t.nbytes for t in plain.saved_tensors())
        efficient_bytes = sum(t.nbytes for t in efficient.saved_tensors())
        assert efficient_bytes < plain_bytes


class TestBackwardGeneration:
    def test_every_parameter_gets_gradient(self, vgg_graph):
        param_ids = {t.id for t in vgg_graph.tensors.values()
                     if t.kind == "parameter"}
        grad_names = {t.name for t in vgg_graph.tensors.values()
                      if t.kind == "gradient"}
        params = [t for t in vgg_graph.tensors.values() if t.kind == "parameter"]
        for param in params:
            assert any(param.name in name for name in grad_names), param.name

    def test_backward_ops_reference_forward(self, vgg_graph):
        for op in vgg_graph.backward_ops():
            if op.op_type == "grad_acc":
                continue
            assert op.forward_of is not None

    def test_backward_in_reverse_order(self, vgg_graph):
        backward = [op for op in vgg_graph.backward_ops()
                    if op.forward_of is not None and op.op_type != "grad_acc"]
        forward_positions = [op.forward_of for op in backward]
        # conv backward emits two ops per forward op; the sequence of
        # forward ids must be non-increasing.
        assert all(a >= b for a, b in zip(forward_positions,
                                          forward_positions[1:]))

    def test_residual_grads_shared_value(self, resnet_graph):
        add_bwd = [op for op in resnet_graph.backward_ops()
                   if op.op_type == "add_bwd"]
        assert add_bwd
        for op in add_bwd:
            assert op.attrs["shared_value"]
            assert len(op.outputs) == 2

    def test_grad_acc_for_multi_consumer_tensors(self, resnet_graph):
        # The block input feeds conv1 and the shortcut -> two grad paths.
        acc = [op for op in resnet_graph.backward_ops()
               if op.op_type == "grad_acc"]
        assert acc

    def test_recompute_bn_backward_does_not_read_input(self, rng):
        with init.fast_init():
            graph = build_training_graph(
                resnet18(dataset="imagenet", num_classes=1000,
                         memory_efficient=True), 4)
        for op in graph.backward_ops():
            if op.op_type != "batchnorm_bwd" or not op.attrs.get("recompute"):
                continue
            forward = graph.op_by_id(op.forward_of)
            assert forward.inputs[0] not in op.inputs


class TestSplitGraph:
    def test_split_and_concat_nodes(self, rng):
        model = to_split_cnn(small_vgg(rng=rng), depth=0.5, num_splits=(2, 2))
        graph = build_training_graph(model, 4)
        types = [op.op_type for op in graph.forward_ops()]
        assert types.count("split") == 1
        assert types.count("concat") == 1
        assert types.index("split") < types.index("concat")

    def test_patch_conv_count(self, rng):
        model = to_split_cnn(small_vgg(rng=rng), depth=0.5, num_splits=(2, 2))
        graph = build_training_graph(model, 4)
        convs = [op for op in graph.forward_ops() if op.op_type == "conv2d"]
        # 3 split convs x 4 patches + 3 unsplit convs.
        assert len(convs) == 15

    def test_patch_shapes_tile_input(self, rng):
        model = to_split_cnn(small_vgg(rng=rng), depth=0.5, num_splits=(2, 2))
        graph = build_training_graph(model, 4)
        split_op = next(op for op in graph.forward_ops()
                        if op.op_type == "split")
        input_tensor = graph.tensor(split_op.inputs[0])
        patches = [graph.tensor(t) for t in split_op.outputs]
        assert len(patches) == 4
        # Patches are laid out row-major over a 2x2 grid: rows (0,1) share a
        # height, columns (0,1)... heights of one column sum to H, widths of
        # one row sum to W, and patch areas tile the full plane.
        heights = [patches[0].shape[2], patches[2].shape[2]]
        widths = [patches[0].shape[3], patches[1].shape[3]]
        assert sum(heights) == input_tensor.shape[2]
        assert sum(widths) == input_tensor.shape[3]
        area = sum(p.shape[2] * p.shape[3] for p in patches)
        assert area == input_tensor.shape[2] * input_tensor.shape[3]

    def test_split_resnet_graph_builds(self, rng):
        model = to_split_cnn(small_resnet(rng=rng), depth=0.7, num_splits=(2, 2))
        graph = build_training_graph(model, 2)
        graph.validate()
        assert any(op.op_type == "split" for op in graph.forward_ops())


class TestLifetimes:
    def test_boundary_is_last_forward(self, vgg_graph):
        lifetimes = compute_lifetimes(vgg_graph)
        boundary = next(iter(lifetimes.values())).boundary
        assert vgg_graph.ops[boundary].phase == "forward"
        assert vgg_graph.ops[boundary + 1].phase == "backward"

    def test_saved_tensors_cross_boundary(self, vgg_graph):
        lifetimes = compute_lifetimes(vgg_graph)
        for tensor in vgg_graph.saved_tensors():
            assert lifetimes[tensor.id].crosses_boundary(), tensor.name

    def test_forward_only_tensor_does_not_cross(self, vgg_graph):
        lifetimes = compute_lifetimes(vgg_graph)
        crossing = [t for t in vgg_graph.tensors.values()
                    if t.kind == "activation"
                    and lifetimes[t.id].crosses_boundary()]
        not_crossing = [t for t in vgg_graph.tensors.values()
                        if t.kind == "activation"
                        and not lifetimes[t.id].crosses_boundary()]
        assert crossing and not_crossing

    def test_produce_before_uses(self, vgg_graph):
        lifetimes = compute_lifetimes(vgg_graph)
        for lifetime in lifetimes.values():
            for use in lifetime.use_indices:
                assert use >= lifetime.produce_index
