"""Compiler correctness: byte-identity, pass algebra, and consumers.

The compiler's contract is the executor's, one level up: for every model
in the zoo matrix (split and unsplit, training and inference, serial and
wavefront), running the default pipeline and executing the lowered
:class:`CompiledPlan` produces byte-identical losses, gradients and
logits to the uncompiled interpreter.  On top of identity, the pass
algebra must hold (idempotence, fuse/fold commutativity), compiled
graphs must stay clean under the static analyzer, survive the JSON
export roundtrip, and key serving plan caches by pipeline fingerprint.
"""

import numpy as np
import pytest

from repro.analysis import analyze_graph
from repro.compile import (
    FOLD_CONSTANTS, FUSE_OPS, CompiledPlan, Pipeline, compile_graph,
    conv_backend_costs, default_pipeline,
)
from repro.core import to_split_cnn
from repro.graph import GraphExecutor, build_inference_graph, build_training_graph
from repro.graph.export import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.graph.ir import Graph
from repro.models import ConvClassifier, small_resnet, small_vgg
from repro.nn import Conv2d, Dropout, Linear, ReLU, Sequential
from repro.serve import Request, ServingEngine


def _dropout_model(rng):
    features = Sequential(
        Conv2d(3, 4, kernel_size=3, padding=1, rng=rng), ReLU())
    classifier = Sequential(
        Linear(4 * 8 * 8, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 4, rng=rng),
    )
    return ConvClassifier(features, classifier, name="dropout-test",
                          input_size=8)


def _case(name):
    """(model, x, y) for one matrix entry; fresh weights per call."""
    rng = np.random.default_rng(0)
    if name == "dropout":
        model = _dropout_model(rng)
        x = rng.standard_normal((2, 3, 8, 8))
    else:
        base, _, splits = name.partition(":")
        make = {"vgg": small_vgg, "resnet": small_resnet}[base]
        model = make(num_classes=4, rng=rng)
        if splits:
            n = int(splits)
            model = to_split_cnn(model, depth=0.5, num_splits=(n, n))
        x = rng.standard_normal((2, 3, 32, 32))
    y = np.array([1, 3])
    return model, x, y


CASES = ["vgg", "vgg:2", "resnet", "resnet:2", "dropout"]


def _outputs_bytes(outputs):
    return {key: value.tobytes() for key, value in outputs.items()}


def _build(model, batch, mode):
    if mode == "train":
        return build_training_graph(model, batch)
    return build_inference_graph(model, batch, eval_batchnorm=True)


def _compiled_graph(model, batch, mode):
    graph = _build(model, batch, mode)
    params = GraphExecutor.parameters_from_model(graph, model)
    compile_graph(graph, params=params)
    return graph, params


def _signature(graph):
    """Structural identity modulo tensor/op numbering: ops in order with
    ids renumbered by first appearance, plus constant payload bytes."""
    mapping = {}

    def tid(tensor_id):
        if tensor_id not in mapping:
            mapping[tensor_id] = len(mapping)
        return mapping[tensor_id]

    positions = {op.id: index for index, op in enumerate(graph.ops)}
    ops = tuple(
        (
            op.op_type, op.phase,
            tuple(tid(t) for t in op.inputs),
            tuple(tid(t) for t in op.outputs),
            tuple(sorted(op.attrs.items())),
            tuple(sorted(tid(t) for t in op.saved)),
            positions[op.forward_of] if op.forward_of is not None else None,
            tid(op.inplace_of) if op.inplace_of is not None else None,
        )
        for op in graph.ops
    )
    constants = tuple(sorted(
        (tid(tensor_id), graph.constants[tensor_id].tobytes())
        for tensor_id in graph.constants
    ))
    return ops, constants


# ----------------------------------------------------------------------
# Byte-identity: compiled plan vs interpreter across the zoo matrix
# ----------------------------------------------------------------------
class TestCompiledIdentity:
    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("mode", ["train", "infer"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_compiled_matches_interpreter(self, case, mode, workers):
        model, x, y = _case(case)
        targets = y if mode == "train" else None
        reference = _build(model, x.shape[0], mode)
        params = GraphExecutor.parameters_from_model(reference, model)
        expected = GraphExecutor(reference, params).run(x, targets)

        compiled, params = _compiled_graph(model, x.shape[0], mode)
        plan = CompiledPlan(compiled, params, workers=workers)
        actual = plan.run(x, targets)
        assert expected.keys() == actual.keys()
        assert _outputs_bytes(expected) == _outputs_bytes(actual)

    def test_compiled_run_is_repeatable(self):
        model, x, y = _case("vgg:2")
        compiled, params = _compiled_graph(model, x.shape[0], "train")
        plan = CompiledPlan(compiled, params, workers=4)
        assert _outputs_bytes(plan.run(x, y)) == _outputs_bytes(plan.run(x, y))

    def test_fusion_actually_happened(self):
        """The matrix above would pass vacuously on a no-op pipeline."""
        model, x, y = _case("vgg:2")
        graph = _build(model, x.shape[0], "infer")
        before = len(graph.ops)
        params = GraphExecutor.parameters_from_model(graph, model)
        report = compile_graph(graph, params=params)
        assert report.ops_after < before
        assert any(op.op_type.endswith("_siblings") for op in graph.ops)
        assert any(op.op_type == "conv2d_relu" for op in graph.ops)

    def test_eval_batchnorm_folds_to_affine(self):
        model, x, y = _case("resnet:2")
        graph, params = _compiled_graph(model, x.shape[0], "infer")
        assert not any(op.op_type == "batchnorm_eval" for op in graph.ops)
        assert any("bn_affine" in op.op_type for op in graph.ops)
        # Folded constants are carried by the graph and referenced.
        assert graph.constants
        for tensor_id in graph.constants:
            assert graph.tensor(tensor_id).kind == "constant"

    def test_memory_efficient_bn_fuses_conv_bn_relu(self):
        rng = np.random.default_rng(0)
        model = small_resnet(num_classes=4, rng=rng)
        model.memory_efficient_bn = True
        x = rng.standard_normal((2, 3, 32, 32))
        y = np.array([1, 3])
        reference = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(reference, model)
        expected = GraphExecutor(reference, params).run(x, y)

        graph = build_training_graph(model, 2)
        compile_graph(graph, params=params)
        assert any(op.op_type == "conv2d_bn_relu" for op in graph.ops)
        actual = CompiledPlan(graph, params).run(x, y)
        assert _outputs_bytes(expected) == _outputs_bytes(actual)


# ----------------------------------------------------------------------
# Pass algebra: idempotence and fuse/fold commutativity
# ----------------------------------------------------------------------
class TestPassAlgebra:
    @pytest.mark.parametrize("case", CASES)
    def test_pipeline_is_idempotent(self, case):
        model, x, y = _case(case)
        graph, params = _compiled_graph(model, x.shape[0], "infer")
        first = _signature(graph)
        report = default_pipeline().run(graph, params=params)
        assert all(result.changed == 0 for result in report.passes)
        assert _signature(graph) == first

    @pytest.mark.parametrize("case", ["vgg:2", "resnet", "resnet:2"])
    def test_fuse_then_fold_equals_fold_then_fuse(self, case):
        model, x, y = _case(case)
        graphs = []
        for order in ((FUSE_OPS, FOLD_CONSTANTS), (FOLD_CONSTANTS, FUSE_OPS)):
            graph = _build(model, x.shape[0], "infer")
            params = GraphExecutor.parameters_from_model(graph, model)
            Pipeline(order).run(graph, params=params)
            graphs.append(graph)
        assert _signature(graphs[0]) == _signature(graphs[1])

    def test_fingerprint_tracks_pass_list(self):
        default = default_pipeline()
        assert default.fingerprint != default_pipeline(
            select_backends=True).fingerprint
        assert default.fingerprint == default_pipeline().fingerprint
        assert default.fingerprint != Pipeline([FUSE_OPS]).fingerprint


# ----------------------------------------------------------------------
# Consumers: analyzer, export roundtrip, serving cache, CLI
# ----------------------------------------------------------------------
class TestAnalyzerOnCompiledGraphs:
    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("mode", ["train", "infer"])
    def test_compiled_graphs_lint_clean(self, case, mode):
        model, x, y = _case(case)
        graph, _ = _compiled_graph(model, x.shape[0], mode)
        report = analyze_graph(graph, workers=4, inference=(mode == "infer"))
        assert report.ok, report.render()


class TestExportRoundtrip:
    @pytest.mark.parametrize("mode", ["train", "infer"])
    def test_roundtrip_then_execute(self, mode, tmp_path):
        model, x, y = _case("resnet:2")
        graph, params = _compiled_graph(model, x.shape[0], mode)
        expected = _outputs_bytes(
            CompiledPlan(graph, params).run(x, y if mode == "train" else None))

        path = tmp_path / "graph.json"
        save_graph(graph, path)
        restored = load_graph(path)
        assert _signature(restored) == _signature(graph)
        actual = _outputs_bytes(
            CompiledPlan(restored, params).run(
                x, y if mode == "train" else None))
        assert actual == expected

    def test_roundtrip_preserves_links_and_attrs(self):
        model, x, y = _case("vgg:2")
        graph, _ = _compiled_graph(model, x.shape[0], "train")
        restored = graph_from_dict(graph_to_dict(graph))
        by_id = {op.id: op for op in restored.ops}
        for op in graph.ops:
            twin = by_id[op.id]
            assert twin.attrs == op.attrs
            assert twin.forward_of == op.forward_of
            assert twin.inplace_of == op.inplace_of
            assert twin.saved == op.saved

    def test_rejects_foreign_documents(self):
        payload = graph_to_dict(Graph("empty"))
        payload["format"] = "other"
        with pytest.raises(ValueError, match="format"):
            graph_from_dict(payload)
        payload = graph_to_dict(Graph("empty"))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            graph_from_dict(payload)


def _synthetic_fft_graph():
    """A conv whose kernel is large enough that the cost model picks the
    FFT backend (13x13 'same' conv over 64x64 maps)."""
    graph = Graph("fft-synth")
    x = graph.add_tensor("input", (2, 8, 64, 64), kind="input")
    w = graph.add_tensor("conv.weight", (16, 8, 13, 13), kind="parameter")
    out = graph.add_tensor("logits", (2, 16, 64, 64))
    graph.add_op("conv", "conv2d", [x, w], [out], attrs={
        "kernel": (13, 13), "stride": (1, 1), "padding": ((6, 6), (6, 6)),
        "in_channels": 8, "out_channels": 16,
    })
    graph.validate()
    return graph


class TestBackendSelector:
    def test_zoo_convs_stay_direct(self):
        model, x, y = _case("vgg:2")
        graph = _build(model, x.shape[0], "infer")
        params = GraphExecutor.parameters_from_model(graph, model)
        default_pipeline(select_backends=True).run(graph, params=params)
        assert not any(op.attrs.get("backend") == "fft" for op in graph.ops)

    def test_large_kernel_flips_to_fft(self):
        graph = _synthetic_fft_graph()
        op = graph.ops[0]
        direct, fft = conv_backend_costs(graph, op)
        assert fft < direct
        default_pipeline(select_backends=True).run(graph)
        assert op.attrs["backend"] == "fft"

    def test_fft_backend_close_and_deterministic(self):
        rng = np.random.default_rng(0)
        params = {"conv.weight": rng.standard_normal((16, 8, 13, 13))}
        x = rng.standard_normal((2, 8, 64, 64))

        direct = GraphExecutor(_synthetic_fft_graph(), params).run(x)

        fft_graph = _synthetic_fft_graph()
        default_pipeline(select_backends=True).run(fft_graph)
        interp = GraphExecutor(fft_graph, params).run(x)
        plan = CompiledPlan(fft_graph, params).run(x)

        np.testing.assert_allclose(interp["logits"], direct["logits"],
                                   rtol=1e-9, atol=1e-9)
        # FFT vs direct is allclose but NOT bitwise -- which is exactly
        # why the selector is opt-in...
        assert interp["logits"].tobytes() != direct["logits"].tobytes()
        # ...while compiled-vs-interpreted stays bitwise on ANY pipeline.
        assert plan["logits"].tobytes() == interp["logits"].tobytes()


class TestServingCache:
    def _engine(self, **kwargs):
        rng = np.random.default_rng(0)
        model = small_vgg(num_classes=4, rng=rng)
        return ServingEngine(model, numeric=True, batch_cap=8, **kwargs)

    def test_fingerprint_separates_cache_keys(self):
        interp = self._engine()
        compiled = self._engine(compile_plans=True)
        assert interp.pipeline_fingerprint == "interpreter"
        assert compiled.pipeline_fingerprint == default_pipeline().fingerprint
        for engine in (interp, compiled):
            engine.execute([Request(id=1, arrival_time=0.0, size=2)])
        interp_keys = set(interp.cache._entries)
        compiled_keys = set(compiled.cache._entries)
        assert interp_keys and compiled_keys
        assert not (interp_keys & compiled_keys)

    def test_compiled_engine_serves_identical_logits(self):
        interp = self._engine(seed=7)
        compiled = self._engine(seed=7, compile_plans=True)
        request = Request(id=1, arrival_time=0.0, size=2)
        interp.execute([request])
        expected = interp.logits_for(request).copy()
        compiled.execute([request])
        np.testing.assert_allclose(compiled.logits_for(request), expected,
                                   rtol=1e-9, atol=1e-9)
        assert isinstance(compiled.entry_for(2).executor, CompiledPlan)

    def test_cache_stats_invariant(self):
        engine = self._engine(compile_plans=True)
        for index in range(6):
            engine.execute([Request(id=index, arrival_time=float(index),
                                    size=1 + index % 3)])
        cache = engine.cache
        assert cache.misses == len(cache) + cache.evictions
        assert cache.hits + cache.misses == engine.executed_batches
        assert cache.hits > 0


class TestCompileCli:
    def test_check_passes(self, capsys):
        from repro.cli import main
        assert main(["compile", "small_vgg", "--split", "4", "--check"]) == 0
        out = capsys.readouterr().out
        assert "byte-identity check: identical" in out
        assert "compile report" in out

    def test_check_train_mode(self, capsys):
        from repro.cli import main
        assert main(["compile", "small_resnet", "--train", "--check",
                     "--workers", "4"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_check_refuses_backends(self, capsys):
        from repro.cli import main
        assert main(["compile", "small_vgg", "--check", "--backends"]) == 2
        assert "byte-identity" in capsys.readouterr().err
