"""Tests for the central op registry (``repro.graph.registry``).

Every model in the model zoo — unsplit, split, and stochastically split —
must build graphs whose ops all resolve through the registry, and the
registry's symbolic shape inference must agree with the shapes the
builder recorded.  The second half covers executor behaviour that rides
on the registry: per-op dropout seeding, context reuse vs. forward
replay, and intermediate-value release between runs.
"""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import (
    Graph, GraphExecutor, build_training_graph, has_op, infer_op_shapes,
    op_def,
)
from repro.models import MODEL_REGISTRY, ConvClassifier, small_vgg
from repro.nn import Conv2d, Dropout, Linear, ReLU, Sequential


def _variants(model):
    yield "unsplit", model
    yield "split", to_split_cnn(model, depth=0.5, num_splits=(2, 2))
    yield "stochastic", to_split_cnn(model, depth=0.5, num_splits=(2, 2),
                                     stochastic=True, seed=0)


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_registry_covers_model_zoo(name):
    """Every op of every zoo model resolves in the registry, and symbolic
    shape inference reproduces the builder's recorded output shapes."""
    model = MODEL_REGISTRY[name](rng=np.random.default_rng(0))
    for variant, variant_model in _variants(model):
        graph = build_training_graph(variant_model, 2)
        checked = 0
        for op in graph.ops:
            definition = op_def(op.op_type)  # raises if unregistered
            if definition.infer_shapes is None:
                continue
            inferred = infer_op_shapes(
                op.op_type,
                [graph.tensor(i).shape for i in op.inputs],
                op.attrs,
            )
            recorded = [graph.tensor(i).shape for i in op.outputs]
            assert inferred == recorded, (name, variant, op.name)
            checked += 1
        assert checked > 0, (name, variant)


class TestRegistryLookup:
    def test_unknown_op_type_raises(self):
        with pytest.raises(NotImplementedError):
            op_def("fft")
        assert not has_op("fft")
        assert has_op("conv2d")

    def test_inference_free_op_raises_on_infer(self):
        # grad_acc has no symbolic inference: asking for it is an error,
        # not a silent passthrough.
        assert op_def("grad_acc").infer_shapes is None
        with pytest.raises(NotImplementedError):
            infer_op_shapes("grad_acc", [(1,)], {})


class TestValidateUsesRegistry:
    def test_unregistered_op_rejected(self):
        graph = Graph("t")
        a = graph.add_tensor("a", (4,))
        b = graph.add_tensor("b", (4,))
        graph.add_op("fft0", "fft", [a], [b])
        with pytest.raises(NotImplementedError):
            graph.validate()

    def test_shape_disagreement_rejected(self):
        graph = Graph("t")
        a = graph.add_tensor("a", (2, 3))
        b = graph.add_tensor("b", (2, 4))  # relu must preserve shape
        graph.add_op("relu0", "relu", [a], [b])
        with pytest.raises(ValueError):
            graph.validate()


def _dropout_model(rng):
    """Tiny classifier with two Dropout layers (cheap to execute)."""
    features = Sequential(
        Conv2d(3, 4, kernel_size=3, padding=1, rng=rng), ReLU())
    classifier = Sequential(
        Linear(4 * 8 * 8, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 4, rng=rng),
    )
    return ConvClassifier(features, classifier, name="dropout-test",
                          input_size=8)


class TestDropoutSeeding:
    @pytest.fixture()
    def setup(self, rng):
        model = _dropout_model(rng)
        graph = build_training_graph(model, 2)
        params = GraphExecutor.parameters_from_model(graph, model)
        x = rng.standard_normal((2, 3, 8, 8))
        y = np.array([0, 1])
        return graph, params, x, y

    @staticmethod
    def _masks(graph, executor):
        return [executor.values[op.outputs[1]]
                for op in graph.forward_ops() if op.op_type == "dropout"]

    def test_distinct_layers_draw_distinct_masks(self, setup):
        # eager_free=False: the masks are inspected after the run.
        graph, params, x, y = setup
        executor = GraphExecutor(graph, params, eager_free=False)
        executor.run(x, y)
        masks = self._masks(graph, executor)
        assert len(masks) == 2
        assert masks[0].shape == masks[1].shape
        assert not np.array_equal(masks[0], masks[1])

    def test_masks_deterministic_per_seed(self, setup):
        graph, params, x, y = setup
        first = GraphExecutor(graph, params, dropout_seed=7, eager_free=False)
        second = GraphExecutor(graph, params, dropout_seed=7, eager_free=False)
        other = GraphExecutor(graph, params, dropout_seed=8, eager_free=False)
        first.run(x, y)
        second.run(x, y)
        other.run(x, y)
        for a, b in zip(self._masks(graph, first), self._masks(graph, second)):
            np.testing.assert_array_equal(a, b)
        assert any(
            not np.array_equal(a, c)
            for a, c in zip(self._masks(graph, first), self._masks(graph, other))
        )


@pytest.fixture()
def small_executor(rng):
    model = small_vgg(num_classes=4, rng=rng)
    graph = build_training_graph(model, 2)
    params = GraphExecutor.parameters_from_model(graph, model)
    x = rng.standard_normal((2, 3, 32, 32))
    y = np.array([1, 3])
    return graph, params, x, y


class TestContextReuse:
    def test_replay_matches_reuse_bitwise(self, small_executor):
        graph, params, x, y = small_executor
        reused = GraphExecutor(graph, params).run(x, y)
        replayed = GraphExecutor(graph, params, reuse_contexts=False).run(x, y)
        assert reused.keys() == replayed.keys()
        for key in reused:
            np.testing.assert_array_equal(reused[key], replayed[key])


class TestReleaseIntermediates:
    def test_values_do_not_grow_across_runs(self, small_executor):
        graph, params, x, y = small_executor
        executor = GraphExecutor(graph, params)
        executor.run(x, y)
        size_after_first = len(executor.values)
        executor.run(x, y)
        assert len(executor.values) == size_after_first

    def test_release_keeps_only_parameters(self, small_executor):
        graph, params, x, y = small_executor
        executor = GraphExecutor(graph, params)
        executor.run(x, y)
        executor.release_intermediates()
        param_ids = {t.id for t in graph.tensors.values()
                     if t.kind == "parameter"}
        assert set(executor.values) == param_ids

    def test_runs_are_repeatable_after_release(self, small_executor):
        graph, params, x, y = small_executor
        executor = GraphExecutor(graph, params)
        first = executor.run(x, y)
        executor.release_intermediates()
        second = executor.run(x, y)
        np.testing.assert_array_equal(first["loss"], second["loss"])
