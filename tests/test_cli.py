"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.batch == 64 and not args.per_layer

    def test_plan_options(self):
        args = build_parser().parse_args(
            ["plan", "vgg19", "-b", "32", "--scheduler", "layerwise",
             "--split-depth", "0.5", "--splits", "9"])
        assert args.model == "vgg19"
        assert args.batch == 32
        assert args.scheduler == "layerwise"
        assert args.splits == 9

    def test_serve_bench_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "vgg11", "--rps", "250", "--duration", "2",
             "--split", "4", "--flush-ms", "2.5", "--deadline-ms", "40"])
        assert args.model == "vgg11"
        assert args.rps == 250.0 and args.duration == 2.0
        assert args.split == 4
        assert args.flush_ms == 2.5 and args.deadline_ms == 40.0

    def test_accuracy_choices(self):
        args = build_parser().parse_args(["accuracy", "depth", "--quick"])
        assert args.experiment == "depth" and args.quick
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "bogus"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "small_vgg", "-b", "4"]) == 0
        out = capsys.readouterr().out
        assert "memory-bound ops" in out
        assert "critical path" in out

    def test_plan_none_scheduler(self, capsys):
        assert main(["plan", "small_vgg", "-b", "4",
                     "--scheduler", "none"]) == 0
        out = capsys.readouterr().out
        assert "offload fraction : 0.00" in out
        assert "step time" in out

    def test_plan_with_split(self, capsys):
        assert main(["plan", "small_resnet", "-b", "4",
                     "--split-depth", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "split" in out

    def test_plan_invalid_splits(self):
        with pytest.raises(SystemExit):
            main(["plan", "small_vgg", "-b", "4",
                  "--split-depth", "0.5", "--splits", "5"])

    def test_fig1_small_batch(self, capsys):
        assert main(["fig1", "-b", "8"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main(["fig11", "--factor", "2"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        with pytest.raises(ValueError):
            main(["info", "lenet"])

    def test_serve_bench(self, capsys):
        assert main(["serve-bench", "small_resnet", "--rps", "50",
                     "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "serve-bench — small-resnet" in out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "0 violations" in out
        assert "batch sizes" in out

    def test_serve_bench_split_model(self, capsys):
        assert main(["serve-bench", "small_vgg", "--rps", "50",
                     "--duration", "0.5", "--split", "4"]) == 0
        assert "split2x2" in capsys.readouterr().out


class TestExport:
    def test_export_to_stdout(self, capsys):
        assert main(["export", "small_vgg", "-b", "2", "--max-ops", "20"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "conv" in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert main(["export", "small_vgg", "-b", "2",
                     "-o", str(target)]) == 0
        assert target.read_text().startswith("digraph")
