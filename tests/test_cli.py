"""Tests for the command-line interface.

Exit codes are part of the contract: 0 = clean, 1 = the command ran and
found problems, 2 = usage or internal error (matching argparse).
"""

import json

import pytest

from repro.analysis import AnalysisReport, Diagnostic
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.batch == 64 and not args.per_layer

    def test_plan_options(self):
        args = build_parser().parse_args(
            ["plan", "vgg19", "-b", "32", "--scheduler", "layerwise",
             "--split-depth", "0.5", "--splits", "9"])
        assert args.model == "vgg19"
        assert args.batch == 32
        assert args.scheduler == "layerwise"
        assert args.splits == 9

    def test_serve_bench_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "vgg11", "--rps", "250", "--duration", "2",
             "--split", "4", "--flush-ms", "2.5", "--deadline-ms", "40"])
        assert args.model == "vgg11"
        assert args.rps == 250.0 and args.duration == 2.0
        assert args.split == 4
        assert args.flush_ms == 2.5 and args.deadline_ms == 40.0

    def test_accuracy_choices(self):
        args = build_parser().parse_args(["accuracy", "depth", "--quick"])
        assert args.experiment == "depth" and args.quick
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "bogus"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "small_vgg", "-b", "4"]) == 0
        out = capsys.readouterr().out
        assert "memory-bound ops" in out
        assert "critical path" in out

    def test_plan_none_scheduler(self, capsys):
        assert main(["plan", "small_vgg", "-b", "4",
                     "--scheduler", "none"]) == 0
        out = capsys.readouterr().out
        assert "offload fraction : 0.00" in out
        assert "step time" in out

    def test_plan_with_split(self, capsys):
        assert main(["plan", "small_resnet", "-b", "4",
                     "--split-depth", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "split" in out

    def test_plan_invalid_splits_exits_two(self, capsys):
        assert main(["plan", "small_vgg", "-b", "4",
                     "--split-depth", "0.5", "--splits", "5"]) == 2
        assert "--splits" in capsys.readouterr().err

    def test_fig1_small_batch(self, capsys):
        assert main(["fig1", "-b", "8"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main(["fig11", "--factor", "2"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_unknown_model_exits_two(self, capsys):
        assert main(["info", "lenet"]) == 2
        assert "lenet" in capsys.readouterr().err

    def test_serve_bench(self, capsys):
        assert main(["serve-bench", "small_resnet", "--rps", "50",
                     "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "serve-bench — small-resnet" in out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "0 violations" in out
        assert "batch sizes" in out

    def test_serve_bench_split_model(self, capsys):
        assert main(["serve-bench", "small_vgg", "--rps", "50",
                     "--duration", "0.5", "--split", "4"]) == 0
        assert "split2x2" in capsys.readouterr().out


class TestLint:
    def test_clean_model_exits_zero(self, capsys):
        assert main(["lint", "small_vgg", "-b", "4"]) == 0
        out = capsys.readouterr().out
        assert "static analysis" in out and "clean" in out

    def test_split_inference_json(self, capsys):
        assert main(["lint", "small_vgg", "-b", "2", "--split", "4",
                     "--inference", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["findings"] == []
        assert "split2x2" in payload["graph"]

    def test_sarif_format(self, capsys):
        assert main(["lint", "small_resnet", "-b", "2",
                     "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-sca"

    def test_error_findings_exit_one(self, capsys, monkeypatch):
        import repro.analysis

        def failing(graph, **kwargs):
            return AnalysisReport(
                graph_name=graph.name, num_ops=len(graph.ops),
                num_tensors=len(graph.tensors), workers=4,
                passes=("graph-lint",),
                findings=[Diagnostic("SCA007", "injected corruption")])

        monkeypatch.setattr(repro.analysis, "analyze_graph", failing)
        assert main(["lint", "small_vgg", "-b", "2"]) == 1
        assert "SCA007" in capsys.readouterr().out

    def test_internal_error_exits_two(self, capsys, monkeypatch):
        import repro.analysis

        def boom(graph, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(repro.analysis, "analyze_graph", boom)
        assert main(["lint", "small_vgg", "-b", "2"]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_unknown_format_rejected_by_argparse(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "small_vgg", "--format", "yaml"])
        assert excinfo.value.code == 2


class TestVerifyPlanExitCodes:
    def test_clean_plan_exits_zero(self, capsys):
        assert main(["verify-plan", "small_vgg", "-b", "4"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_overtight_capacity_exits_one(self, capsys):
        # A capacity no plan can fit forces error-severity violations.
        assert main(["verify-plan", "small_vgg", "-b", "4",
                     "--capacity-gib", "0.000001"]) == 1
        assert "capacity" in capsys.readouterr().out.lower()


class TestExport:
    def test_export_to_stdout(self, capsys):
        assert main(["export", "small_vgg", "-b", "2", "--max-ops", "20"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "conv" in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert main(["export", "small_vgg", "-b", "2",
                     "-o", str(target)]) == 0
        assert target.read_text().startswith("digraph")
