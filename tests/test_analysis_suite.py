"""Tests for the whole-stack analyzer additions: abstract interpretation
(SCA3xx), lowering verification (SCA4xx), config lint (SCA5xx), and the
AnalysisSuite policy layer (severities, suppressions, baselines, cache).

Mutation discipline mirrors test_analysis.py: every new code family has
at least one test that seeds a defect and asserts it is caught by
exactly that code — never by a pre-existing one — plus clean-path tests
proving the analyzers stay quiet on known-good artifacts.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis import (
    GRAPH_PASSES, PASS_CONFIG, AnalysisSuite, Diagnostic, Suppression,
    analyze_graph, check_cache_keys, graph_fingerprint, interpret_graph,
    lint_dense_config, lint_engine_config, lint_fleet_config,
    load_baseline, verify_lowering, write_baseline,
)
from repro.analysis.diagnostics import HELP_URI, sarif_rules
from repro.compile import CompiledPlan, default_pipeline
from repro.graph import build_inference_graph, build_training_graph
from repro.graph.executor import GraphExecutor
from repro.graph.ir import Graph
from repro.hmms.planner import PlanCache
from repro.models import build_model
from repro.nn import init
from repro.serve import ServingEngine, SLOClass, TenantConfig, FleetScheduler
from repro.infer import PatchInferer
from repro.infer.splitter import GridSplitter


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------

def _model(name="small_vgg"):
    with init.fast_init():
        return build_model(name)


@pytest.fixture(scope="module")
def bn_eval_graph_factory():
    """Fresh small_resnet eval-mode inference graphs (BN running stats
    become constants) — rebuilt per test so mutations don't leak."""
    def build():
        return build_inference_graph(_model("small_resnet"), 2,
                                     eval_batchnorm=True)
    return build


@pytest.fixture(scope="module")
def compiled_train():
    """(graph, params) for a compiled small_vgg training graph; each test
    builds its own CompiledPlan (cheap) and mutates only the plan."""
    model = _model()
    graph = build_training_graph(model, 2)
    params = GraphExecutor.parameters_from_model(graph, model)
    default_pipeline().run(graph, params=params)
    return graph, params


@pytest.fixture(scope="module")
def compiled_eval():
    """(graph, params) for a compiled small_resnet eval graph — BN
    folding creates bn_affine constants for the SCA405 poison test."""
    model = _model("small_resnet")
    graph = build_inference_graph(model, 2, eval_batchnorm=True)
    params = GraphExecutor.parameters_from_model(graph, model)
    default_pipeline().run(graph, params=params)
    return graph, params


def _plan(fixture):
    graph, params = fixture
    return CompiledPlan(graph, params, dropout_seed=0, workers=2)


def _only_code(findings, code):
    """Assert the seeded defect is caught by ``code`` and by no
    pre-existing code."""
    codes = {f.code for f in findings}
    assert code in codes, f"expected {code}, got {sorted(codes)}"
    assert codes == {code}, f"unexpected extra codes: {sorted(codes)}"
    return [f for f in findings if f.code == code]


# ----------------------------------------------------------------------
# SCA3xx: abstract interpretation
# ----------------------------------------------------------------------
class TestAbsintMutations:
    def test_zoo_eval_graph_is_clean(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        report = analyze_graph(graph, workers=4, inference=True)
        assert not report.findings, report.render()

    def test_sca301_negative_running_var(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        var_id = next(t.id for t in graph.tensors.values()
                      if t.kind == "constant" and "running_var" in t.name)
        graph.constants[var_id] = np.full_like(graph.constants[var_id],
                                               -1.0)
        findings = _only_code(interpret_graph(graph), "SCA301")
        assert any("1/sqrt" in f.message or "var" in f.message.lower()
                   for f in findings)
        # The provable hazard survives the full pass stack unchanged.
        report = analyze_graph(graph, workers=4, inference=True)
        assert report.by_code("SCA301") and not report.ok

    def test_sca301_degenerate_dropout_rate(self):
        graph = build_training_graph(_model("alexnet"), 2)
        dropout = next(op for op in graph.forward_ops()
                       if op.op_type == "dropout")
        dropout.attrs["p"] = 1.0       # keep-scale 1/(1-p) divides by zero
        findings = interpret_graph(graph)
        assert any(f.code == "SCA301" and f.op_ids == (dropout.id,)
                   for f in findings)

    def test_sca302_nan_constant(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        mean_id = next(t.id for t in graph.tensors.values()
                       if t.kind == "constant" and "running_mean" in t.name)
        poisoned = graph.constants[mean_id].copy()
        poisoned.flat[0] = np.nan
        graph.constants[mean_id] = poisoned
        [finding] = _only_code(interpret_graph(graph), "SCA302")
        assert finding.tensor_id == mean_id
        assert "non-finite" in finding.message

    def test_sca302_shape_mismatch(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        mean_id = next(t.id for t in graph.tensors.values()
                       if t.kind == "constant" and "running_mean" in t.name)
        graph.constants[mean_id] = np.zeros((3,), dtype=np.float32)
        findings = interpret_graph(graph)
        assert any(f.code == "SCA302" and f.tensor_id == mean_id
                   and "shape" in f.message for f in findings)

    def test_sca302_missing_constant_value(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        mean_id = next(t.id for t in graph.tensors.values()
                       if t.kind == "constant" and "running_mean" in t.name)
        del graph.constants[mean_id]
        findings = interpret_graph(graph)
        assert any(f.code == "SCA302" and f.tensor_id == mean_id
                   and "no value" in f.message for f in findings)

    def test_sca303_provable_overflow(self):
        """Two float32-width constants whose sum provably exceeds the
        declared 4-byte float maximum."""
        graph = Graph("overflow")
        a = graph.add_tensor("a", (2, 2), kind="constant")
        b = graph.add_tensor("b", (2, 2), kind="constant")
        out = graph.add_tensor("logits", (2, 2))
        graph.constants[a.id] = np.full((2, 2), 3e38, dtype=np.float32)
        graph.constants[b.id] = np.full((2, 2), 3e38, dtype=np.float32)
        graph.add_op("sum", "add", [a, b], [out])
        graph.validate()
        [finding] = _only_code(interpret_graph(graph), "SCA303")
        assert finding.tensor_id == out.id
        assert "6e+38" in finding.message

    def test_sca304_constant_width_disagrees(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        mean_id = next(t.id for t in graph.tensors.values()
                       if t.kind == "constant" and "running_mean" in t.name)
        # Same values, double width: declared dtype_bytes=4 now lies.
        graph.constants[mean_id] = \
            graph.constants[mean_id].astype(np.float64)
        [finding] = _only_code(interpret_graph(graph), "SCA304")
        assert finding.tensor_id == mean_id

    def test_sca304_non_float_constant(self, bn_eval_graph_factory):
        graph = bn_eval_graph_factory()
        mean_id = next(t.id for t in graph.tensors.values()
                       if t.kind == "constant" and "running_mean" in t.name)
        graph.constants[mean_id] = np.zeros(
            graph.constants[mean_id].shape, dtype=np.int32)
        findings = interpret_graph(graph)
        assert any(f.code == "SCA304" and "non-float" in f.message
                   for f in findings)

    def test_sca304_mixed_float_widths(self):
        graph = Graph("widths")
        x = graph.add_tensor("x", (2, 4), kind="input")
        y = graph.add_tensor("logits", (2, 4), dtype_bytes=8)
        op = graph.add_op("head", "relu", [x], [y])
        graph.validate()
        findings = interpret_graph(graph)
        assert any(f.code == "SCA304" and f.op_ids == (op.id,)
                   for f in findings)

    def test_provable_only_policy_stays_quiet_on_unbounded(self):
        # Inputs/params are TOP: data-dependent hazards must NOT fire.
        graph = build_training_graph(_model(), 2)
        assert not interpret_graph(graph)


# ----------------------------------------------------------------------
# SCA4xx: lowering verification
# ----------------------------------------------------------------------
class TestLoweringMutations:
    def test_clean_plans_verify(self, compiled_train, compiled_eval):
        for fixture in (compiled_train, compiled_eval):
            assert not verify_lowering(_plan(fixture))

    def test_sca401_foreign_kernel(self, compiled_train):
        plan = _plan(compiled_train)
        kernel, op = plan._steps[3]
        plan._steps[3] = (lambda ex, o: None, op)
        findings = _only_code(verify_lowering(plan), "SCA401")
        assert any(f.op_ids == (op.id,) for f in findings)

    def test_sca401_dropped_step(self, compiled_train):
        plan = _plan(compiled_train)
        plan._steps.pop()
        findings = verify_lowering(plan)
        assert any(f.code == "SCA401" and "entries" in f.message
                   for f in findings)

    def test_sca402_inflated_dependency_count(self, compiled_train):
        plan = _plan(compiled_train)
        op = plan.graph.ops[-1]
        plan._remaining_template[op.id] += 1
        findings = _only_code(verify_lowering(plan), "SCA402")
        assert any(f.op_ids == (op.id,) for f in findings)

    def test_sca402_dropped_dependents(self, compiled_train):
        plan = _plan(compiled_train)
        op_id = next(op.id for op in plan.graph.ops
                     if plan._dependents[op.id])
        plan._dependents[op_id] = ()
        findings = _only_code(verify_lowering(plan), "SCA402")
        assert any(f.op_ids == (op_id,) for f in findings)

    def test_sca403_inflated_refcount(self, compiled_train):
        plan = _plan(compiled_train)
        tensor_id = next(i for i, c in enumerate(plan._counts_template)
                         if c > 0)
        plan._counts_template[tensor_id] += 1
        findings = _only_code(verify_lowering(plan), "SCA403")
        assert any(f.tensor_id == tensor_id for f in findings)

    def test_sca403_pinned_value_freed(self, compiled_train):
        plan = _plan(compiled_train)
        param = next(t for t in plan.graph.tensors.values()
                     if t.kind == "parameter")
        plan._counts_template[param.id] = 1
        findings = _only_code(verify_lowering(plan), "SCA403")
        assert any("pinned value would be freed" in f.message
                   and f.tensor_id == param.id for f in findings)

    def test_sca404_twin_retargeted(self, compiled_train):
        plan = _plan(compiled_train)
        graph = plan.graph
        bwd = next(op for op in graph.ops if op.forward_of is not None)
        other = next(o for o in graph.ops
                     if o.phase == "forward" and o.id != bwd.forward_of)
        plan._fwd[bwd.id] = other
        findings = _only_code(verify_lowering(plan), "SCA404")
        assert any("not retargeted" in f.message for f in findings)

    def test_sca404_wrong_seed_pair(self, compiled_train):
        plan = _plan(compiled_train)
        op = plan.graph.ops[0]
        plan._seeds[op.id] = (99, 99)
        findings = _only_code(verify_lowering(plan), "SCA404")
        assert any(f.op_ids == (op.id,) for f in findings)

    def test_sca404_wrong_context_count(self, compiled_train):
        plan = _plan(compiled_train)
        fid = next(op.forward_of for op in plan.graph.ops
                   if op.forward_of is not None)
        plan._ctx_template[fid] += 1
        findings = _only_code(verify_lowering(plan), "SCA404")
        assert any(f.op_ids == (fid,) for f in findings)

    def test_sca405_missing_parameter_value(self, compiled_train):
        plan = _plan(compiled_train)
        param = next(t for t in plan.graph.tensors.values()
                     if t.kind == "parameter")
        plan._base_values[param.id] = None
        findings = _only_code(verify_lowering(plan), "SCA405")
        assert any(f.tensor_id == param.id and "no seeded value"
                   in f.message for f in findings)

    def test_sca405_poisoned_folded_constant(self, compiled_eval):
        # BN folding materialized bn_affine scale constants; poison one
        # in the plan's persistent table only.
        plan = _plan(compiled_eval)
        const = next(t for t in plan.graph.tensors.values()
                     if t.kind == "constant" and t.name.endswith(".scale"))
        plan._base_values[const.id] = np.full(const.shape, np.nan)
        findings = _only_code(verify_lowering(plan), "SCA405")
        assert any(f.tensor_id == const.id and "non-finite" in f.message
                   for f in findings)

    def test_sca405_nonpersistent_seeded(self, compiled_train):
        plan = _plan(compiled_train)
        activation = next(t for t in plan.graph.tensors.values()
                          if t.kind == "activation")
        plan._base_values[activation.id] = np.zeros(activation.shape)
        findings = _only_code(verify_lowering(plan), "SCA405")
        assert any(f.tensor_id == activation.id for f in findings)


# ----------------------------------------------------------------------
# SCA5xx: config lint
# ----------------------------------------------------------------------

def _small_fleet(**kwargs):
    tenants = [TenantConfig(name="a", model="small_resnet", batch_cap=4,
                            rps=100.0),
               TenantConfig(name="b", model="small_resnet", batch_cap=4,
                            rps=100.0)]
    kwargs.setdefault("autoscale", False)
    return FleetScheduler(tenants, **kwargs)


class TestConfigLint:
    def test_clean_engine_config(self):
        engine = ServingEngine.from_zoo("small_resnet")
        engine.entry_for(engine.max_batch)   # populate the cache
        assert not lint_engine_config(engine)

    def test_sca503_no_batch_fits(self):
        engine = ServingEngine.from_zoo("small_vgg", memory_budget=1)
        findings = _only_code(lint_engine_config(engine), "SCA503")
        assert "no batch fits" in findings[0].message

    def test_clean_fleet_config(self):
        assert not lint_fleet_config(_small_fleet())

    def test_sca501_reservation_below_bucket_peak(self):
        fleet = _small_fleet()
        tenant = fleet.tenants["a"]
        tenant.reservation = 1
        findings = lint_fleet_config(fleet)
        assert any(f.code == "SCA501" and "below the bucket" in f.message
                   for f in findings)

    def test_sca501_ledger_overcommit(self):
        fleet = _small_fleet()
        for tenant in fleet.tenants.values():
            tenant.reservation = fleet.ledger.capacity
        findings = lint_fleet_config(fleet)
        assert any(f.code == "SCA501" and "cannot co-reside" in f.message
                   for f in findings)

    def test_sca502_infeasible_deadline_is_error(self):
        fleet = _small_fleet()
        tenant = fleet.tenants["a"]
        tenant.config = dataclasses.replace(
            tenant.config,
            slo=SLOClass("tight", deadline=1e-9, flush_timeout=1e-10))
        findings = _only_code(lint_fleet_config(fleet), "SCA502")
        assert findings[0].severity == "error"
        assert "every request expires" in findings[0].message

    def test_sca502_capped_bucket_overrun_is_warning(self):
        fleet = _small_fleet()
        tenant = fleet.tenants["a"]
        single = tenant.engine.entry_for(1).latency
        cap = tenant.engine.entry_for(tenant.bucket_cap).latency
        assert cap > single
        deadline = (single + cap) / 2.0
        tenant.config = dataclasses.replace(
            tenant.config,
            slo=SLOClass("mid", deadline=deadline,
                         flush_timeout=deadline / 10.0))
        findings = _only_code(lint_fleet_config(fleet), "SCA502")
        assert findings[0].severity == "warning"
        assert "full buckets expire" in findings[0].message

    def test_sca503_patch_batch_over_budget(self):
        model = _model("small_vgg")
        probe = PatchInferer(model)
        grid, in_hw = (2, 2), (32, 32)
        variants = list(GridSplitter(grid, 0).plan(model, in_hw).variants())
        feasible = probe.max_patch_batch(variants)
        inferer = PatchInferer(
            model, patch_batch=feasible + 1,
            memory_budget=probe.entry_for(variants[0], feasible)
            .plan.device_peak)
        findings = lint_dense_config(inferer, in_hw, grid)
        assert any(f.code == "SCA503" for f in findings)

    def test_clean_dense_config(self):
        model = _model("small_vgg")
        inferer = PatchInferer(model)
        assert not lint_dense_config(inferer, (32, 32), (2, 2))

    def test_sca504_unfingerprinted_cache_key(self):
        cache = PlanCache()
        cache.get_or_build(("small_vgg", 4), lambda: object())
        [finding] = _only_code(check_cache_keys(cache, "test"), "SCA504")
        assert "('small_vgg', 4)" in finding.message

    def test_fingerprinted_keys_accepted(self):
        cache = PlanCache()
        cache.get_or_build(("m", 4, "interpreter"), lambda: object())
        cache.get_or_build(("m", 8, "1f2e3d4c5b6a"), lambda: object())
        assert not check_cache_keys(cache, "test")


# ----------------------------------------------------------------------
# AnalysisSuite: severities, suppressions, baselines, cache, SARIF
# ----------------------------------------------------------------------

def _dead_op_graph(num_dead=1):
    """small_vgg training graph with ``num_dead`` dead relu ops — each
    yields one SCA002 warning anchored at its op."""
    graph = build_training_graph(_model(), 2)
    dead = []
    for index in range(num_dead):
        source = graph.tensors[graph.forward_ops()[0].outputs[0]]
        scratch = graph.add_tensor(f"scratch{index}", source.shape)
        dead.append(graph.add_op(f"dead{index}", "relu", [source],
                                 [scratch]))
    return graph, dead


class TestSuitePolicy:
    def test_inline_suppression_silences_one_location(self):
        graph, (d0, d1) = _dead_op_graph(2)
        d0.attrs["lint_suppress"] = "SCA002"
        report = AnalysisSuite().analyze(graph)
        assert [f for f, kind in report.suppressed if kind == "inline"]
        active_ops = {f.op_ids for f in report.by_code("SCA002")}
        assert (d1.id,) in active_ops and (d0.id,) not in active_ops

    def test_inline_suppression_is_code_specific(self):
        graph, (dead,) = _dead_op_graph(1)
        dead.attrs["lint_suppress"] = "SCA101"     # wrong code: no effect
        report = AnalysisSuite().analyze(graph)
        assert report.by_code("SCA002") and not report.suppressed

    def test_baseline_matches_exact_anchor(self):
        graph, _ = _dead_op_graph(1)
        [finding] = AnalysisSuite().analyze(graph).by_code("SCA002")
        entry = Suppression(code="SCA002", graph=graph.name,
                            anchor=finding.anchor(), reason="known")
        report = AnalysisSuite(baseline=[entry]).analyze(graph)
        assert not report.by_code("SCA002")
        assert [f for f, kind in report.suppressed if kind == "baseline"]
        assert not report.expired_baseline

    def test_baseline_entry_expires_when_finding_disappears(self):
        graph, _ = _dead_op_graph(1)
        stale = Suppression(code="SCA002", graph=graph.name,
                            anchor="op 99999", reason="gone")
        report = AnalysisSuite(baseline=[stale]).analyze(graph)
        assert stale in report.expired_baseline
        # Wildcard entries have no single home graph and never expire.
        wildcard = Suppression(code="SCA002", graph="*", anchor="op 99999")
        report = AnalysisSuite(baseline=[wildcard]).analyze(graph)
        assert not report.expired_baseline

    def test_strict_ignores_both_channels(self):
        graph, (dead,) = _dead_op_graph(1)
        dead.attrs["lint_suppress"] = "SCA002"
        [finding] = AnalysisSuite().analyze(
            graph, passes=GRAPH_PASSES).findings or \
            [Diagnostic("SCA002", "placeholder", op_ids=(dead.id,))]
        entry = Suppression(code="SCA002", graph=graph.name,
                            anchor=f"op {dead.id}")
        report = AnalysisSuite(baseline=[entry], strict=True).analyze(graph)
        assert report.by_code("SCA002") and not report.suppressed

    def test_severity_overrides(self):
        graph, _ = _dead_op_graph(1)
        as_error = AnalysisSuite(
            severities={"SCA002": "error"}).analyze(graph)
        assert not as_error.ok
        ignored = AnalysisSuite(
            severities={"SCA002": "ignore"}).analyze(graph)
        assert not ignored.by_code("SCA002") and not ignored.suppressed

    def test_severity_validation(self):
        with pytest.raises(ValueError, match="SCA999"):
            AnalysisSuite(severities={"SCA999": "error"})
        with pytest.raises(ValueError, match="invalid severity"):
            AnalysisSuite(severities={"SCA002": "loud"})

    def test_result_cache_hits_by_fingerprint(self):
        graph, _ = _dead_op_graph(1)
        suite = AnalysisSuite()
        first = suite.analyze(graph)
        second = suite.analyze(graph)
        assert not first.cache_hit and second.cache_hit
        assert suite.cache_hits == 1 and suite.cache_misses == 1
        assert [f.code for f in second.findings] == \
            [f.code for f in first.findings]
        # A structural change moves the fingerprint: miss again.
        graph.ops[-1].attrs["note"] = "mutated"
        assert not suite.analyze(graph).cache_hit

    def test_fingerprint_tracks_constants(self):
        model = _model("small_resnet")
        graph = build_inference_graph(model, 2, eval_batchnorm=True)
        before = graph_fingerprint(graph)
        tensor_id = next(iter(graph.constants))
        poisoned = graph.constants[tensor_id].copy()
        poisoned.flat[0] += 1.0
        graph.constants[tensor_id] = poisoned
        assert graph_fingerprint(graph) != before

    def test_lowering_pass_rides_along(self, compiled_train):
        graph, params = compiled_train
        plan = CompiledPlan(graph, params, dropout_seed=0, workers=2)
        plan._seeds[graph.ops[0].id] = (7, 7)
        report = AnalysisSuite().analyze(graph, plan=plan)
        assert "lowering" in report.passes
        assert report.by_code("SCA404")

    def test_report_for_applies_policy_to_config_findings(self):
        finding = Diagnostic("SCA504", "bad key")
        suite = AnalysisSuite(baseline=[
            Suppression(code="SCA504", graph="cfg", anchor="")])
        report = suite.report_for("cfg", [finding], (PASS_CONFIG,))
        assert not report.findings and report.suppressed

    def test_baseline_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        entries = [Suppression(code="SCA002", graph="g", anchor="op 3",
                               reason="r")]
        write_baseline(path, entries)
        assert load_baseline(path) == entries
        with pytest.raises(ValueError, match="unknown code"):
            load_baseline_path = str(tmp_path / "bad.json")
            with open(load_baseline_path, "w") as handle:
                json.dump({"suppressions": [{"code": "SCA999"}]}, handle)
            load_baseline(load_baseline_path)


class TestSuiteSarif:
    def test_suppressed_results_carry_baseline_state(self):
        graph, (d0, d1) = _dead_op_graph(2)
        d0.attrs["lint_suppress"] = "SCA002"
        report = AnalysisSuite().analyze(graph)
        log = report.to_sarif()
        run = log["runs"][0]
        states = {r["baselineState"] for r in run["results"]}
        assert states == {"new", "unchanged"}
        suppressed = [r for r in run["results"]
                      if r["baselineState"] == "unchanged"]
        assert suppressed[0]["suppressions"] == [{"kind": "inSource"}]
        assert run["properties"]["fingerprint"] == report.fingerprint
        assert run["properties"]["strict"] is False

    def test_external_suppression_kind_for_baseline(self):
        graph, _ = _dead_op_graph(1)
        [finding] = AnalysisSuite().analyze(graph).by_code("SCA002")
        entry = Suppression(code="SCA002", graph=graph.name,
                            anchor=finding.anchor())
        log = AnalysisSuite(baseline=[entry]).analyze(graph).to_sarif()
        suppressed = [r for r in log["runs"][0]["results"]
                      if r.get("suppressions")]
        assert suppressed[0]["suppressions"] == [{"kind": "external"}]

    def test_rules_metadata_is_complete(self):
        for rule in sarif_rules():
            assert rule["id"].startswith("SCA")
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["helpUri"] == \
                f"{HELP_URI}#{rule['id'].lower()}"
            assert rule["defaultConfiguration"]["level"] in \
                ("error", "warning")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestLintCli:
    def test_model_required_without_matrix(self, capsys):
        from repro.cli import main
        assert main(["lint"]) == 2
        assert "required unless --matrix" in capsys.readouterr().err

    def test_single_model_clean(self, capsys):
        from repro.cli import main
        assert main(["lint", "small_vgg", "-b", "2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_compile_mode_runs_lowering_pass(self, capsys):
        from repro.cli import main
        assert main(["lint", "small_vgg", "-b", "2", "--compile",
                     "--inference"]) == 0
        assert "lowering" in capsys.readouterr().out

    def test_config_mode(self, capsys):
        from repro.cli import main
        assert main(["lint", "small_resnet", "--config"]) == 0
        assert "config-lint" in capsys.readouterr().out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "bl.json")
        assert main(["lint", "small_vgg", "-b", "2",
                     "--write-baseline", path]) == 0
        assert load_baseline(path) == []
