"""Tests for the gradient-checkpointing (recompute) graph transform."""

import numpy as np
import pytest

from repro.graph import build_training_graph
from repro.graph.checkpoint import (
    append_checkpointed_backward, build_checkpointed_training_graph,
)
from repro.hmms import HMMSPlanner
from repro.models import small_resnet, small_vgg
from repro.profile import CostModel
from repro.sim import GPUSimulator


@pytest.fixture(scope="module")
def model():
    return small_vgg(rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def checkpointed(model):
    return build_checkpointed_training_graph(model, 16, num_segments=3)


@pytest.fixture(scope="module")
def plain(model):
    return build_training_graph(model, 16)


class TestStructure:
    def test_validates(self, checkpointed):
        checkpointed.validate()

    def test_recompute_ops_present(self, checkpointed):
        recompute = [op for op in checkpointed.backward_ops()
                     if op.name.endswith(".re")]
        assert recompute
        # Recompute clones carry forward op types but run in backward.
        assert {op.op_type for op in recompute} & {"conv2d", "relu"}

    def test_trunk_saves_nothing(self, checkpointed):
        flatten_seen = False
        for op in checkpointed.forward_ops():
            if op.op_type == "flatten":
                flatten_seen = True
            if not flatten_seen:
                assert op.saved == [], op.name

    def test_classifier_keeps_saved(self, checkpointed):
        linear_ops = [op for op in checkpointed.forward_ops()
                      if op.op_type == "linear"]
        assert any(op.saved for op in linear_ops)

    def test_every_parameter_gets_gradient(self, checkpointed, plain):
        def grad_names(graph):
            return {t.name.split("(")[-1].rstrip(")") for t in
                    graph.tensors.values() if t.kind == "gradient"}
        assert grad_names(checkpointed) == grad_names(plain)

    def test_more_ops_than_plain(self, checkpointed, plain):
        assert len(checkpointed.ops) > len(plain.ops)

    def test_single_segment_degenerates(self, model):
        graph = build_checkpointed_training_graph(model, 4, num_segments=1)
        graph.validate()

    def test_resnet_blocks_checkpoint(self):
        model = small_resnet(rng=np.random.default_rng(0))
        graph = build_checkpointed_training_graph(model, 4, num_segments=2)
        graph.validate()
        GPUSimulator().run(HMMSPlanner(scheduler="none").plan(graph))


class TestTradeoffs:
    def test_recompute_costs_time(self, checkpointed, plain):
        cost = CostModel()
        assert cost.total_time(checkpointed) > cost.total_time(plain)
        # ... but less than a full second forward pass on top of everything.
        assert cost.total_time(checkpointed) < \
            cost.total_time(plain) + 2 * cost.total_time(plain, "forward")

    def test_saved_bytes_shrink(self, checkpointed, plain):
        saved_plain = sum(t.nbytes for t in plain.saved_tensors())
        saved_ckpt = sum(t.nbytes for t in checkpointed.saved_tensors())
        assert saved_ckpt < saved_plain

    def test_simulates_safely_with_all_schedulers(self, checkpointed):
        for scheduler in ("none", "layerwise", "hmms"):
            plan = HMMSPlanner(scheduler=scheduler).plan(checkpointed)
            result = GPUSimulator().run(plan)
            assert result.total_time > 0

    def test_composes_with_offloading(self, model):
        """Checkpoint boundary tensors are offload candidates, so the two
        memory strategies compose."""
        from repro.graph import build_forward_graph
        from repro.graph.checkpoint import append_checkpointed_backward
        graph = build_forward_graph(model, 64, workspace_cap=0)
        append_checkpointed_backward(graph, num_segments=3)
        plan = HMMSPlanner(scheduler="hmms").plan(graph)
        assert plan.offload_plan.transfers  # checkpoints do get offloaded
        GPUSimulator().run(plan)
