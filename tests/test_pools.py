"""Unit + property tests for the first-fit and bump allocators (§4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmms import BumpPool, FirstFitPool, PoolError


class TestFirstFit:
    def test_sequential_allocation(self):
        pool = FirstFitPool()
        assert pool.alloc(100, "a") == 0
        assert pool.alloc(50, "b") == 100
        assert pool.high_water() == 150

    def test_reuses_freed_gap(self):
        pool = FirstFitPool()
        pool.alloc(100, "a")
        pool.alloc(50, "b")
        pool.free("a")
        assert pool.alloc(80, "c") == 0          # fits the hole
        assert pool.high_water() == 150

    def test_first_fit_skips_too_small_gap(self):
        pool = FirstFitPool()
        pool.alloc(10, "a")
        pool.alloc(100, "b")
        pool.free("a")
        assert pool.alloc(50, "c") == 110        # hole of 10 too small

    def test_peak_tracks_high_water(self):
        pool = FirstFitPool()
        pool.alloc(100, "a")
        pool.alloc(100, "b")
        pool.free("a")
        pool.free("b")
        pool.alloc(10, "c")
        assert pool.peak == 200

    def test_capacity_enforced(self):
        pool = FirstFitPool(capacity=100)
        pool.alloc(80, "a")
        with pytest.raises(PoolError):
            pool.alloc(30, "b")

    def test_duplicate_tag_rejected(self):
        pool = FirstFitPool()
        pool.alloc(10, "a")
        with pytest.raises(PoolError):
            pool.alloc(10, "a")

    def test_free_unknown_tag(self):
        with pytest.raises(PoolError):
            FirstFitPool().free("ghost")

    def test_negative_size_rejected(self):
        with pytest.raises(PoolError):
            FirstFitPool().alloc(-1, "a")

    def test_zero_size_allocation(self):
        pool = FirstFitPool()
        assert pool.alloc(0, "a") == 0
        pool.free("a")

    def test_live_bytes(self):
        pool = FirstFitPool()
        pool.alloc(30, "a")
        pool.alloc(20, "b")
        pool.free("a")
        assert pool.live_bytes() == 20

    def test_reset(self):
        pool = FirstFitPool()
        pool.alloc(10, "a")
        pool.reset()
        assert pool.peak == 0
        assert pool.alloc(10, "a") == 0
        assert pool._offsets == [0]

    def test_zero_size_blocks_stack_at_one_offset(self):
        """Zero-size blocks share an offset with each other and with a
        real block; frees must remove exactly the tagged block."""
        pool = FirstFitPool()
        pool.alloc(0, "z1")
        pool.alloc(0, "z2")
        pool.alloc(10, "real")              # also at offset 0
        pool.free("z1")
        pool.free("real")
        assert pool.live_bytes() == 0
        assert pool.alloc(5, "next") == 0   # gap reusable
        pool.free("z2")
        with pytest.raises(PoolError):
            pool.free("z2")

    def test_offsets_stay_parallel_and_sorted(self):
        """The bisect index (`_offsets`) must mirror `_blocks` exactly
        through arbitrary churn."""
        rng = np.random.default_rng(0)
        pool = FirstFitPool()
        live = []
        for step in range(300):
            if live and rng.random() < 0.45:
                tag = live.pop(rng.integers(len(live)))
                pool.free(tag)
            else:
                pool.alloc(int(rng.integers(0, 200)), step)
                live.append(step)
            assert pool._offsets == [b[0] for b in pool._blocks]
            assert pool._offsets == sorted(pool._offsets)


class TestBumpPool:
    def test_never_reuses(self):
        pool = BumpPool()
        pool.alloc(100, "a")
        pool.free("a")
        assert pool.alloc(100, "b") == 100
        assert pool.peak == 200

    def test_peak_exceeds_first_fit_under_churn(self):
        first_fit, bump = FirstFitPool(), BumpPool()
        for pool in (first_fit, bump):
            for i in range(10):
                pool.alloc(100, i)
                pool.free(i)
        assert first_fit.peak == 100
        assert bump.peak == 1000


@st.composite
def alloc_free_program(draw):
    """A random valid alloc/free program."""
    steps = []
    live = []
    for index in range(draw(st.integers(1, 60))):
        if live and draw(st.booleans()):
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            steps.append(("free", victim, 0))
        else:
            size = draw(st.integers(1, 1000))
            steps.append(("alloc", index, size))
            live.append(index)
    return steps


@given(alloc_free_program())
@settings(max_examples=150, deadline=None)
def test_first_fit_blocks_never_overlap(program):
    """Safety: no two live allocations ever overlap, and peak >= live sum."""
    pool = FirstFitPool()
    live = {}
    for action, tag, size in program:
        if action == "alloc":
            offset = pool.alloc(size, tag)
            for other_offset, other_size in live.values():
                assert offset + size <= other_offset \
                    or other_offset + other_size <= offset
            live[tag] = (offset, size)
        else:
            pool.free(tag)
            del live[tag]
        assert pool.live_bytes() == sum(s for _, s in live.values())
        assert pool.peak >= pool.live_bytes()


@given(alloc_free_program())
@settings(max_examples=100, deadline=None)
def test_first_fit_never_worse_than_bump(program):
    first_fit, bump = FirstFitPool(), BumpPool()
    for action, tag, size in program:
        for pool in (first_fit, bump):
            if action == "alloc":
                pool.alloc(size, tag)
            else:
                pool.free(tag)
    assert first_fit.peak <= bump.peak
