"""Tests for the ring allreduce and the data-parallel trainer (§6.4)."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ShapesDataset
from repro.distributed import allreduce_seconds
from repro.distributed.data_parallel import DataParallelTrainer, RingAllreduce
from repro.models import small_vgg
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.tensor import Tensor


class TestRingAllreduce:
    def test_sums_correctly(self, rng):
        world = 4
        arrays = [rng.standard_normal(37) for _ in range(world)]
        results, _ = RingAllreduce(world).allreduce(arrays)
        expected = np.sum(arrays, axis=0)
        for result in results:
            np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_single_worker_is_identity(self, rng):
        array = rng.standard_normal(10)
        results, stats = RingAllreduce(1).allreduce([array])
        np.testing.assert_array_equal(results[0], array)
        assert stats.bytes_sent_per_worker == 0

    def test_traffic_matches_bandwidth_optimal_bound(self, rng):
        """Per-worker traffic is 2|G|(W-1)/W -> the paper's 2|G| bound."""
        for world in (2, 3, 4, 8):
            arrays = [np.zeros(world * 25) for _ in range(world)]
            _, stats = RingAllreduce(world).allreduce(arrays)
            expected = 2 * stats.payload_bytes * (world - 1) / world
            assert stats.bytes_sent_per_worker == pytest.approx(expected)
            assert stats.lower_bound_ratio() == pytest.approx(
                (world - 1) / world)
            assert stats.steps == 2 * (world - 1)

    def test_bound_used_by_epoch_model_is_asymptote(self):
        """The §6.4 model charges 2|G| per step; the implemented ring sends
        2|G|(W-1)/W, approaching that bound from below as W grows."""
        ratios = []
        for world in (2, 4, 8, 16):
            arrays = [np.zeros(world * 16) for _ in range(world)]
            _, stats = RingAllreduce(world).allreduce(arrays)
            ratios.append(stats.bytes_sent_per_worker
                          / (2 * stats.payload_bytes))
        assert all(r < 1.0 for r in ratios)
        assert ratios == sorted(ratios)          # monotone toward 1
        assert ratios[-1] > 0.9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RingAllreduce(0)
        with pytest.raises(ValueError):
            RingAllreduce(2).allreduce([np.zeros(4)])
        with pytest.raises(ValueError):
            RingAllreduce(2).allreduce([np.zeros(4), np.zeros(5)])

    @given(world=st.integers(2, 6), size=st.integers(1, 64),
           seed=st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_allreduce_property(self, world, size, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(size) for _ in range(world)]
        results, stats = RingAllreduce(world).allreduce(arrays)
        expected = np.sum(arrays, axis=0)
        for result in results:
            np.testing.assert_allclose(result, expected, rtol=1e-10,
                                       atol=1e-10)
        assert stats.bytes_sent_per_worker <= 2 * stats.payload_bytes


class TestDataParallelTrainer:
    def _data(self, batch):
        dataset = ShapesDataset(num_samples=batch, image_size=16,
                                num_classes=3, seed=0)
        return dataset.batch(range(batch))

    def test_matches_single_worker_full_batch(self):
        """W workers on batch shards == 1 worker on the full batch
        (no batch-norm in the model, so the equivalence is exact)."""
        x, y = self._data(8)
        reference = small_vgg(num_classes=3, input_size=16,
                              config=[8, "M", 16, "M"],
                              rng=np.random.default_rng(5))
        parallel_model = copy.deepcopy(reference)

        optimizer = SGD(reference.parameters(), lr=0.1, momentum=0.9)
        criterion = CrossEntropyLoss()
        optimizer.zero_grad()
        criterion(reference(Tensor(x)), y).backward()
        optimizer.step()

        trainer = DataParallelTrainer(parallel_model, world_size=4,
                                      lr=0.1, momentum=0.9)
        trainer.train_step(x, y)

        for ref, par in zip(reference.parameters(),
                            trainer.replicas[0].parameters()):
            np.testing.assert_allclose(par.data, ref.data, rtol=1e-4,
                                       atol=1e-6)

    def test_replicas_stay_in_sync(self):
        x, y = self._data(8)
        model = small_vgg(num_classes=3, input_size=16, config=[8, "M"],
                          rng=np.random.default_rng(1))
        trainer = DataParallelTrainer(model, world_size=2, lr=0.05)
        for _ in range(3):
            trainer.train_step(x, y)
            assert trainer.replicas_in_sync(atol=1e-12)

    def test_loss_decreases(self):
        x, y = self._data(16)
        model = small_vgg(num_classes=3, input_size=16, config=[8, "M", 16],
                          rng=np.random.default_rng(2))
        trainer = DataParallelTrainer(model, world_size=4, lr=0.05)
        first = trainer.train_step(x, y)
        for _ in range(5):
            last = trainer.train_step(x, y)
        assert last < first

    def test_traffic_stats_exposed(self):
        x, y = self._data(4)
        model = small_vgg(num_classes=3, input_size=16, config=[8, "M"],
                          rng=np.random.default_rng(3))
        trainer = DataParallelTrainer(model, world_size=2, lr=0.01)
        trainer.train_step(x, y)
        stats = trainer.last_stats
        assert stats is not None
        # Payload is the float64 flat gradient (trainer.gradient_bytes is
        # the float32 deployment figure).
        assert stats.payload_bytes == 2 * trainer.gradient_bytes
        assert stats.bytes_sent_per_worker == pytest.approx(
            2 * stats.payload_bytes * (2 - 1) / 2)

    def test_batch_must_divide(self):
        model = small_vgg(num_classes=3, input_size=16, config=[8, "M"],
                          rng=np.random.default_rng(4))
        trainer = DataParallelTrainer(model, world_size=3)
        x, y = self._data(4)
        with pytest.raises(ValueError):
            trainer.train_step(x, y)

    def test_world_size_one(self):
        x, y = self._data(4)
        model = small_vgg(num_classes=3, input_size=16, config=[8, "M"],
                          rng=np.random.default_rng(6))
        trainer = DataParallelTrainer(model, world_size=1, lr=0.05)
        loss = trainer.train_step(x, y)
        assert np.isfinite(loss)
