"""Smoke tests for the experiment drivers (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig, compare_schedulers, format_series, format_table,
    max_batch_size, render_fig1, render_fig11, run_fig1, run_fig11,
    run_fig9_timelines, stochastic_comparison, sweep_depth,
)
from repro.experiments.accuracy import GRID_OF_SPLITS, make_datasets, make_model
from repro.hmms import HMMSPlanner
from repro.models import small_vgg
from repro.profile import P100_NVLINK


TINY = ExperimentConfig(
    model="small_resnet", num_classes=3, image_size=16,
    train_samples=48, test_samples=24, epochs=1, batch_size=16,
)


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.34567), (10, 3.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.346" in text
        assert "|" in lines[1] and "+" in lines[2] and "|" in lines[3]

    def test_format_series(self):
        text = format_series("S", [(1, 2)], x_label="x", y_label="y")
        assert "S" in text and "x" in text and "y" in text


class TestFig1Driver:
    def test_runs_on_subset(self):
        result = run_fig1(batch_size=8, models=["resnet18"])
        assert "resnet18" in result.analyses
        assert result.fraction("resnet18") > 0

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run_fig1(models=["lenet"])

    def test_render(self):
        result = run_fig1(batch_size=8, models=["resnet18"])
        text = render_fig1(result, per_layer=True)
        assert "Figure 1" in text
        assert "per-layer" in text


class TestAccuracyDrivers:
    def test_grid_mapping(self):
        assert GRID_OF_SPLITS[4] == (2, 2)
        assert GRID_OF_SPLITS[9] == (3, 3)
        assert all(h * w == n for n, (h, w) in GRID_OF_SPLITS.items())

    def test_make_datasets_disjoint_seeds(self):
        train, test = make_datasets(TINY)
        assert len(train) == 48 and len(test) == 24
        assert not np.array_equal(train[0][0], test[0][0])

    def test_make_model_variants(self):
        assert make_model(TINY).name == "small-resnet"
        vgg_config = ExperimentConfig(model="small_vgg", image_size=16)
        assert make_model(vgg_config).name == "small-vgg"
        with pytest.raises(ValueError):
            make_model(ExperimentConfig(model="lenet"))

    def test_sweep_depth_tiny(self):
        points = sweep_depth(TINY, depths=(0.0, 0.6))
        assert len(points) == 2
        assert points[0].achieved_depth == 0.0
        assert points[1].achieved_depth > 0.0
        assert all(0 <= p.test_error <= 1 for p in points)

    def test_stochastic_comparison_tiny(self):
        results = stochastic_comparison(TINY, depth=0.6)
        assert set(results) == {"baseline", "scnn", "sscnn"}
        assert results["sscnn"].achieved_depth > 0


class TestThroughputDrivers:
    def test_compare_schedulers_tiny(self, rng):
        comparison = compare_schedulers(small_vgg(rng=rng), batch_size=8)
        assert set(comparison.outcomes) == {"none", "layerwise", "hmms"}
        assert comparison.degradation("none") == 0.0
        assert comparison.outcomes["hmms"].throughput > 0

    def test_fig9_timelines(self):
        timelines = run_fig9_timelines(batch_size=8, width=40)
        assert set(timelines) == {"none", "layerwise", "hmms"}
        for text in timelines.values():
            assert "compute" in text


class TestBatchScaling:
    def test_max_batch_monotone_in_capacity(self, rng):
        model_builder = lambda: small_vgg(rng=np.random.default_rng(0))
        planner = HMMSPlanner(scheduler="none")
        small_dev = P100_NVLINK.with_(memory_capacity=256 << 20)
        large_dev = P100_NVLINK.with_(memory_capacity=1 << 30)
        small_batch, _ = max_batch_size(model_builder, planner, small_dev,
                                        step=8, upper=512)
        large_batch, _ = max_batch_size(model_builder, planner, large_dev,
                                        step=8, upper=2048)
        assert large_batch > small_batch

    def test_peak_at_max_fits(self, rng):
        model_builder = lambda: small_vgg(rng=np.random.default_rng(0))
        planner = HMMSPlanner(scheduler="none")
        device = P100_NVLINK.with_(memory_capacity=256 << 20)
        batch, peak = max_batch_size(model_builder, planner, device,
                                     step=8, upper=512)
        assert peak <= device.memory_capacity

    def test_does_not_fit_at_all_raises(self, rng):
        model_builder = lambda: small_vgg(rng=np.random.default_rng(0))
        planner = HMMSPlanner(scheduler="none")
        device = P100_NVLINK.with_(memory_capacity=1 << 20)
        with pytest.raises(ValueError):
            max_batch_size(model_builder, planner, device, step=8, upper=64)


class TestFig11Driver:
    def test_speedup_curve_shape(self):
        result = run_fig11(base_batch=8, split_batch_factor=4,
                           bandwidths=(1, 10, 100), dataset_size=8_000)
        speedups = [s for _, s in result.curve]
        assert speedups[0] >= speedups[1] >= speedups[2]
        assert result.speedup_at(10) > 1.0
        with pytest.raises(KeyError):
            result.speedup_at(3)

    def test_render(self):
        result = run_fig11(base_batch=8, split_batch_factor=2,
                           bandwidths=(10,), dataset_size=8_000)
        assert "Figure 11" in render_fig11(result)


class TestDatasetChoice:
    def test_gratings_configuration(self):
        config = ExperimentConfig(dataset="gratings", num_classes=3,
                                  image_size=16, train_samples=32,
                                  test_samples=16, epochs=1)
        train, test = make_datasets(config)
        from repro.data import GratingsDataset
        assert isinstance(train, GratingsDataset)
        assert len(train) == 32 and len(test) == 16

    def test_gratings_task_is_learnable(self):
        """Local texture is discriminative, so even one epoch of a tiny
        model beats chance on gratings — the 'splitting barely hurts'
        dataset regime described in repro.data.synthetic."""
        from repro.experiments.accuracy import train_variant
        config = ExperimentConfig(dataset="gratings", model="small_vgg",
                                  num_classes=3, image_size=16,
                                  train_samples=96, test_samples=48,
                                  epochs=3, lr=0.01)
        result, _ = train_variant(config, depth=0.0, grid=(1, 1))
        assert result.final_test_error < 0.55   # chance is 0.67
