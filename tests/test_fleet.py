"""Tests for the fleet runtime: SLOs, ledger, partition, continuous
batching, autoscaler, and the per-tenant accounting invariant."""

import dataclasses

import numpy as np
import pytest

from repro.graph import build_inference_graph
from repro.models import small_resnet
from repro.profile.device import P100_NVLINK
from repro.serve import (
    BATCH, INTERACTIVE, STANDARD, SLO_CLASSES, DeviceLedger,
    FleetBenchConfig, FleetScheduler, Request, SLOClass, TenantConfig,
    fleet_arrivals, run_fleet_bench, wavefront_steps,
)


def small_tenant(name, **kwargs):
    """A CIFAR-scale tenant: cheap to plan, capacity search capped at 8."""
    kwargs.setdefault("model", "small_resnet")
    kwargs.setdefault("batch_cap", 8)
    kwargs.setdefault("rps", 400.0)
    return TenantConfig(name=name, **kwargs)


def small_fleet(tenants, **kwargs):
    kwargs.setdefault("autoscale", False)
    return FleetScheduler(tenants, **kwargs)


# ----------------------------------------------------------------------
# SLO classes
# ----------------------------------------------------------------------
class TestSLOClass:
    def test_standard_tiers_are_registered(self):
        assert SLO_CLASSES == {"interactive": INTERACTIVE,
                               "standard": STANDARD, "batch": BATCH}
        assert INTERACTIVE.deadline < STANDARD.deadline
        assert BATCH.deadline is None

    def test_flush_timeout_may_not_exceed_deadline(self):
        with pytest.raises(ValueError, match="exceeds the deadline"):
            SLOClass("bad", deadline=0.01, flush_timeout=0.02)

    def test_from_deadline_derives_flush(self):
        slo = SLOClass.from_deadline("quarter", deadline=0.4)
        assert slo.flush_timeout == pytest.approx(0.1)
        with pytest.raises(ValueError, match="flush_fraction"):
            SLOClass.from_deadline("bad", deadline=0.4, flush_fraction=0.0)

    def test_absolute_deadline(self):
        assert STANDARD.absolute_deadline(2.5) == pytest.approx(3.5)
        assert BATCH.absolute_deadline(2.5) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline must be positive"):
            SLOClass("bad", deadline=0.0, flush_timeout=0.0)
        with pytest.raises(ValueError, match="flush_timeout must be"):
            SLOClass("bad", deadline=None, flush_timeout=-1.0)


# ----------------------------------------------------------------------
# Device ledger
# ----------------------------------------------------------------------
class TestDeviceLedger:
    def test_reserve_release_cycle(self):
        ledger = DeviceLedger(capacity=100)
        assert ledger.reserve("a", 0, 60)
        assert ledger.reserved == 60 and ledger.free == 40
        assert ledger.reserve("b", 0, 40)
        assert ledger.free == 0
        ledger.release("a", 0)
        assert ledger.reserved == 40
        assert ledger.peak_reserved == 100   # high-water mark survives

    def test_refuses_overcommit(self):
        ledger = DeviceLedger(capacity=100)
        assert ledger.reserve("a", 0, 70)
        assert not ledger.reserve("b", 0, 31)
        assert ledger.reserved == 70         # refusal left no residue

    def test_duplicate_reservation_raises(self):
        ledger = DeviceLedger(capacity=100)
        ledger.reserve("a", 0, 10)
        with pytest.raises(ValueError, match="already holds"):
            ledger.reserve("a", 0, 10)

    def test_reservation_of_sums_per_tenant(self):
        ledger = DeviceLedger(capacity=100)
        ledger.reserve("a", 0, 10)
        ledger.reserve("a", 1, 20)
        ledger.reserve("b", 0, 5)
        assert ledger.reservation_of("a") == 30
        assert ledger.reservation_of("b") == 5


# ----------------------------------------------------------------------
# Wavefront steps
# ----------------------------------------------------------------------
class TestWavefrontSteps:
    def test_counts_dependency_levels(self):
        model = small_resnet(rng=np.random.default_rng(0))
        graph = build_inference_graph(model, 2)
        steps = wavefront_steps(graph)
        # A deep CNN has many levels but no more levels than ops.
        assert 2 <= steps <= len(graph.ops)

    def test_deterministic(self):
        model = small_resnet(rng=np.random.default_rng(0))
        graph = build_inference_graph(model, 2)
        assert wavefront_steps(graph) == wavefront_steps(graph)


# ----------------------------------------------------------------------
# Capacity partition on the shared device
# ----------------------------------------------------------------------
class TestCapacityPartition:
    def test_reservations_fit_the_ledger(self):
        fleet = small_fleet([small_tenant("a"), small_tenant("b"),
                             small_tenant("c")])
        assert fleet.ledger.reserved <= fleet.ledger.capacity
        for tenant in fleet.tenants.values():
            assert tenant.bucket_cap >= 1
            assert fleet.ledger.reservation_of(tenant.config.name) \
                == tenant.reservation

    def test_contention_shrinks_the_hungriest_tenant(self):
        # Give the fleet only ~1.5x one tenant's solo reservation: the
        # partition must halve buckets until both tenants co-fit.
        solo = small_fleet([small_tenant("a")])
        solo_cap = solo.bucket_caps()["a"]
        solo_bytes = solo.tenants["a"].reservation
        tight = dataclasses.replace(P100_NVLINK,
                                    memory_capacity=int(1.5 * solo_bytes))
        pair = small_fleet([small_tenant("a"), small_tenant("b")],
                           device=tight)
        caps = pair.bucket_caps()
        assert min(caps.values()) < solo_cap
        assert pair.ledger.reserved <= tight.memory_capacity

    def test_queue_and_batcher_sized_to_the_cap(self):
        fleet = small_fleet([small_tenant("a")])
        tenant = fleet.tenants["a"]
        assert tenant.queue.max_request_size == tenant.bucket_cap
        assert tenant.batcher.max_batch_images == tenant.bucket_cap
        assert tenant.batcher.flush_timeout \
            == tenant.config.slo.flush_timeout

    def test_unfittable_fleet_raises(self):
        # Room for ~1.5 batch-1 plans: each tenant fits alone, but two
        # cannot co-fit even after the partition shrinks both to 1.
        solo = small_fleet([small_tenant("a")])
        peak1 = solo.tenants["a"].engine.entry_for(1).plan.device_peak
        hopeless = dataclasses.replace(P100_NVLINK,
                                       memory_capacity=int(1.5 * peak1))
        with pytest.raises(ValueError, match="does not fit"):
            small_fleet([small_tenant("a"), small_tenant("b")],
                        device=hopeless)

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            small_fleet([small_tenant("a"), small_tenant("a")])

    def test_split_variant_keeps_more_capacity_under_contention(self):
        # The paper's claim at fleet scope: on a device too small for two
        # full-size tenants, the split variant's smaller plan peak lets
        # it keep a bucket at least as large as its unsplit twin.
        solo = small_fleet([small_tenant("base")])
        solo_bytes = solo.tenants["base"].reservation
        tight = dataclasses.replace(P100_NVLINK,
                                    memory_capacity=int(1.5 * solo_bytes))
        fleet = small_fleet(
            [small_tenant("base"), small_tenant("split", split=4)],
            device=tight)
        caps = fleet.bucket_caps()
        assert caps["split"] >= caps["base"]


# ----------------------------------------------------------------------
# Shared plan cache
# ----------------------------------------------------------------------
class TestSharedPlanCache:
    def test_tenants_serving_the_same_variant_share_plans(self):
        fleet = small_fleet([small_tenant("a"), small_tenant("b")])
        engines = [t.engine for t in fleet.tenants.values()]
        assert all(engine.cache is fleet.cache for engine in engines)
        # The partition builds tenant a's largest-bucket entry; tenant
        # b's identical key must hit instead of building a twin.
        assert fleet.cache.hits >= 1


# ----------------------------------------------------------------------
# The fleet event loop
# ----------------------------------------------------------------------
def run_small_fleet(tenants=None, duration=0.5, seed=0, **fleet_kwargs):
    tenants = tenants or [small_tenant("a"), small_tenant("b", split=4)]
    config = FleetBenchConfig(tenants=tenants, duration=duration, seed=seed,
                              continuous=fleet_kwargs.pop("continuous", True),
                              autoscale=fleet_kwargs.pop("autoscale", False))
    fleet = FleetScheduler(tenants, continuous=config.continuous,
                           autoscale=config.autoscale, **fleet_kwargs)
    metrics = fleet.run(fleet_arrivals(config))
    return fleet, metrics


class TestFleetRun:
    def test_trace_is_deterministic_and_per_tenant_seeded(self):
        tenants = [small_tenant("a"), small_tenant("b")]
        config = FleetBenchConfig(tenants=tenants, duration=1.0, seed=3)
        first = fleet_arrivals(config)
        second = fleet_arrivals(config)
        assert [(r.arrival_time, r.tenant) for r in first] \
            == [(r.arrival_time, r.tenant) for r in second]
        # Adding a tenant must not perturb existing tenants' instants.
        wider = FleetBenchConfig(tenants=tenants + [small_tenant("c")],
                                 duration=1.0, seed=3)
        a_times = [r.arrival_time for r in first if r.tenant == "a"]
        a_wider = [r.arrival_time for r in fleet_arrivals(wider)
                   if r.tenant == "a"]
        assert a_times == a_wider

    def test_run_is_deterministic(self):
        results = []
        for _ in range(2):
            _, metrics = run_small_fleet()
            summary = {name: (m.completed_requests, m.batches, m.expired,
                              m.latency.p(99) if m.latency.samples else None)
                       for name, m in metrics.per_tenant.items()}
            results.append(summary)
        assert results[0] == results[1]

    def test_fleet_drains_completely(self):
        fleet, metrics = run_small_fleet()
        assert all(count == 0 for count in fleet.still_queued().values())
        for name, m in metrics.per_tenant.items():
            assert m.completed_requests > 0, name
            assert m.arrived == (m.rejected_queue_full + m.expired
                                 + m.completed_requests), name

    def test_continuous_mode_joins_in_flight_batches(self):
        fleet, metrics = run_small_fleet(
            tenants=[small_tenant("a", rps=2000.0)])
        assert fleet.metrics.joins["a"] > 0

    def test_flush_only_mode_never_joins(self):
        fleet, metrics = run_small_fleet(
            tenants=[small_tenant("a", rps=2000.0)], continuous=False)
        assert fleet.metrics.joins["a"] == 0
        assert metrics.tenant("a").completed_requests > 0

    def test_unknown_tenant_rejected_at_submit(self):
        fleet = small_fleet([small_tenant("a")])
        with pytest.raises(ValueError, match="unknown tenant"):
            fleet.submit(Request(id=0, arrival_time=0.0, tenant="ghost"),
                         now=0.0)
        with pytest.raises(ValueError, match="unknown tenant"):
            fleet.submit(Request(id=0, arrival_time=0.0), now=0.0)

    def test_unsorted_trace_rejected(self):
        fleet = small_fleet([small_tenant("a")])
        trace = [Request(id=0, arrival_time=1.0, tenant="a"),
                 Request(id=1, arrival_time=0.5, tenant="a")]
        with pytest.raises(ValueError, match="time-sorted"):
            fleet.run(trace)

    def test_continuous_beats_flush_p99_on_the_same_trace(self):
        # The headline property: joining in-flight batches at wavefront
        # boundaries strictly lowers tail latency at moderate load,
        # because partial batches stop serializing behind full passes.
        tenants = [small_tenant("a", rps=10_000.0, slo=STANDARD)]
        config = FleetBenchConfig(tenants=tenants, duration=1.0, seed=0)
        trace = fleet_arrivals(config)
        p99 = {}
        for continuous in (True, False):
            fleet = small_fleet(tenants, continuous=continuous)
            metrics = fleet.run([dataclasses.replace(r) for r in trace])
            p99[continuous] = metrics.tenant("a").latency.p(99)
        assert p99[True] < p99[False]


# ----------------------------------------------------------------------
# Deadline boundary under continuous batching
# ----------------------------------------------------------------------
class TestContinuousDeadlineBoundary:
    """Pinned semantics carried into the join path: a request admitted
    into an in-flight batch exactly at its deadline is served."""

    def _boundary_fleet(self):
        tenant = small_tenant("a", slo=STANDARD)
        fleet = small_fleet([tenant])
        engine = fleet.tenants["a"].engine
        entry = engine.entry_for(3)        # bucket 4: one free slot
        steps = wavefront_steps(entry.graph)
        assert steps >= 2                  # joins need a later boundary
        flush = STANDARD.flush_timeout
        # r0 dispatches when its flush timer fires; the first wavefront
        # boundary after that is where r1 can join.  Times are computed
        # with the same float operations the scheduler uses, so the
        # "exactly at the deadline" case is exact, not approximate.
        dispatch = 0.0 + flush
        boundary = dispatch + entry.latency / steps
        return fleet, dispatch, boundary

    def _run(self, fleet, dispatch, boundary, deadline):
        # r1 lands while r0's batch is mid-pass: after the dispatch,
        # before the first wavefront boundary.
        trace = [
            Request(id=0, arrival_time=0.0, size=3, tenant="a"),
            Request(id=1, arrival_time=(dispatch + boundary) / 2, size=1,
                    deadline=deadline, tenant="a"),
        ]
        return fleet.run(trace).tenant("a")

    def test_join_exactly_at_deadline_is_served(self):
        fleet, dispatch, boundary = self._boundary_fleet()
        metrics = self._run(fleet, dispatch, boundary, deadline=boundary)
        assert metrics.completed_requests == 2
        assert metrics.expired == 0
        assert fleet.metrics.joins["a"] == 1

    def test_join_past_deadline_expires(self):
        fleet, dispatch, boundary = self._boundary_fleet()
        metrics = self._run(fleet, dispatch, boundary,
                            deadline=boundary - 1e-9)
        assert metrics.completed_requests == 1
        assert metrics.expired == 1
        assert fleet.metrics.joins["a"] == 0

    def test_joiner_runs_a_full_pass(self):
        # The joiner's latency covers a whole pass from its boundary —
        # it does not piggyback on the host batch's remaining steps.
        fleet, dispatch, boundary = self._boundary_fleet()
        engine = fleet.tenants["a"].engine
        entry = engine.entry_for(3)
        steps = wavefront_steps(entry.graph)
        metrics = self._run(fleet, dispatch, boundary, deadline=None)
        # Completions record in completion order; the joiner finishes a
        # full boundary after the host batch, so it is the last sample.
        joiner_latency = metrics.latency.samples[-1]
        arrival = (dispatch + boundary) / 2
        expected = (boundary + entry.latency) - arrival
        assert joiner_latency == pytest.approx(expected)
        assert steps >= 2


# ----------------------------------------------------------------------
# Autoscaler
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_backlog_scales_up_within_ledger(self):
        # Tiny buckets + heavy load: queued images outgrow a batch's
        # worth of work and the backlog rule must fire.
        tenants = [small_tenant("a", rps=20_000.0, batch_cap=2,
                                max_replicas=3)]
        config = FleetBenchConfig(tenants=tenants, duration=0.5, seed=0)
        fleet = FleetScheduler(tenants, autoscale=True,
                               autoscale_interval=0.05)
        fleet.run(fleet_arrivals(config))
        assert fleet.metrics.scale_ups["a"] > 0
        assert fleet.metrics.peak_replicas["a"] > 1
        assert fleet.metrics.peak_replicas["a"] <= 3
        assert fleet.ledger.peak_reserved <= fleet.ledger.capacity

    def test_idle_replicas_scale_back_down(self):
        # Burst then trickle: replicas added for the burst must retire
        # once they sit idle while the trickle keeps the fleet ticking.
        tenants = [small_tenant("a", rps=20_000.0, batch_cap=2,
                                max_replicas=3)]
        burst = fleet_arrivals(FleetBenchConfig(
            tenants=tenants, duration=0.5, seed=0))
        trickle = [Request(id=0, arrival_time=0.5 + 0.2 * i, size=1,
                           tenant="a") for i in range(20)]
        trace = burst + trickle
        for index, request in enumerate(trace):
            request.id = index
        fleet = FleetScheduler(tenants, autoscale=True,
                               autoscale_interval=0.05, idle_timeout=0.2)
        fleet.run(trace)
        assert fleet.metrics.scale_ups["a"] > 0
        assert fleet.metrics.scale_downs["a"] > 0
        assert fleet.replica_counts()["a"] < fleet.metrics.peak_replicas["a"]

    def test_ledger_refusal_is_counted_not_fatal(self):
        # Capacity for ~1.2 replicas: the first fits, the backlog-driven
        # second must be refused by the ledger and counted.
        probe = small_fleet([small_tenant("a", batch_cap=2)])
        solo_bytes = probe.tenants["a"].reservation
        tight = dataclasses.replace(P100_NVLINK,
                                    memory_capacity=int(1.2 * solo_bytes))
        tenants = [small_tenant("a", rps=20_000.0, batch_cap=2,
                                max_replicas=4)]
        config = FleetBenchConfig(tenants=tenants, duration=0.5, seed=0)
        fleet = FleetScheduler(tenants, device=tight, autoscale=True,
                               autoscale_interval=0.05)
        metrics = fleet.run(fleet_arrivals(config))
        assert fleet.metrics.scale_up_refusals > 0
        assert fleet.metrics.peak_replicas["a"] == 1
        metrics.check_accounting(fleet.still_queued())


# ----------------------------------------------------------------------
# Accounting invariant: property-style fuzz over seeded Poisson traces
# ----------------------------------------------------------------------
class TestFleetAccountingFuzz:
    """arrived == rejected + expired + completed + still_queued, per
    tenant and globally, over randomized-but-seeded fleet configurations.
    Every trace, tenant mix, SLO and mode is derived from the seed, so a
    failure replays exactly."""

    SLOS = [INTERACTIVE, STANDARD, BATCH,
            SLOClass.from_deadline("tight", 0.05)]

    @pytest.mark.parametrize("seed", range(6))
    def test_invariant_over_random_fleets(self, seed):
        rng = np.random.default_rng(seed)
        tenants = []
        for i in range(int(rng.integers(1, 4))):
            tenants.append(small_tenant(
                f"t{i}",
                split=int(rng.choice([1, 4])),
                slo=self.SLOS[int(rng.integers(len(self.SLOS)))],
                rps=float(rng.integers(200, 3000)),
                request_size=int(rng.integers(1, 3)),
                queue_depth=int(rng.integers(4, 64)),
            ))
        config = FleetBenchConfig(
            tenants=tenants,
            duration=float(rng.uniform(0.2, 0.6)),
            seed=seed,
            continuous=bool(seed % 2),
            autoscale=bool(rng.integers(2)),
        )
        fleet, metrics = run_fleet_bench(config)
        # run_fleet_bench already called check_accounting; re-assert the
        # arithmetic explicitly so the invariant survives driver changes.
        still = fleet.still_queued()
        assert all(count == 0 for count in still.values())
        totals = [0, 0]
        for name, m in metrics.per_tenant.items():
            assert m.arrived == (m.rejected_queue_full + m.expired
                                 + m.completed_requests), name
            totals[0] += m.arrived
            totals[1] += (m.rejected_queue_full + m.expired
                          + m.completed_requests)
        assert totals[0] == totals[1]

    def test_check_accounting_localizes_the_tenant(self):
        from repro.serve import FleetMetrics
        metrics = FleetMetrics(["good", "bad"])
        metrics.tenant("bad").arrived = 1
        with pytest.raises(AssertionError, match="tenant 'bad'"):
            metrics.check_accounting()


# ----------------------------------------------------------------------
# Mixed dense + classification tenants
# ----------------------------------------------------------------------
class TestMixedDenseFleet:
    """One fleet serving a classification tenant next to a dense
    (patch-inference) tenant: exact accounting, no joiners into dense
    replicas, plan-verification invariant on the dense engine."""

    def make_fleet(self, continuous=True):
        tenants = [
            small_tenant("cls", rps=800.0),
            small_tenant("dense", model="small_vgg", rps=200.0,
                         queue_depth=8),
        ]
        return small_fleet(tenants, continuous=continuous)

    def make_trace(self, n=40, seed=3):
        from repro.serve import DenseRequest
        rng = np.random.default_rng(seed)
        arrivals, clock = [], 0.0
        for i in range(n):
            clock += float(rng.exponential(0.0005))
            if rng.random() < 0.3:
                hw = (32, 32) if rng.random() < 0.5 else (64, 64)
                arrivals.append(DenseRequest(
                    id=i, arrival_time=clock, tenant="dense",
                    image_hw=hw, grid=(2, 2)))
            else:
                arrivals.append(Request(
                    id=i, arrival_time=clock, tenant="cls",
                    size=int(rng.integers(1, 3))))
        return arrivals

    @pytest.mark.parametrize("continuous", [False, True])
    def test_mixed_trace_accounts_exactly(self, continuous):
        fleet = self.make_fleet(continuous=continuous)
        arrivals = self.make_trace()
        metrics = fleet.run(arrivals)       # run() checks accounting
        assert all(v == 0 for v in fleet.still_queued().values())
        dense_m = metrics.tenant("dense")
        assert dense_m.completed_requests > 0
        # Every dense batch is exactly one request of its patch total.
        assert set(dense_m.batch_sizes) <= {4}
        dense_engine = fleet.tenants["dense"].engine
        completed_patches = sum(
            r.size for r in arrivals
            if r.tenant == "dense" and r.completion_time is not None)
        assert dense_engine.executed_images >= completed_patches
        # The fleet shares one plan cache across tenants, so the
        # verification invariant holds fleet-wide: every miss was built
        # by exactly one engine and verified there.
        verified = sum(t.engine.plans_verified
                       for t in fleet.tenants.values())
        assert verified == dense_engine.cache.misses

    def test_no_joiners_into_dense_replicas(self):
        fleet = self.make_fleet(continuous=True)
        metrics = fleet.run(self.make_trace(n=60, seed=5))
        # Classification joins may happen; dense ones never do — a dense
        # replica's synthetic step admits no joiners, so the dense
        # tenant's join counter stays zero.
        assert fleet.metrics.joins["dense"] == 0
        assert metrics.tenant("dense").completed_requests > 0
