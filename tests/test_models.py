"""Tests for the model zoo: forward shapes, structure, registry."""

import numpy as np
import pytest

from repro.graph import build_forward_graph
from repro.models import (
    MODEL_REGISTRY, alexnet, build_model, resnet18, resnet34, resnet50,
    small_resnet, small_vgg, vgg11, vgg16, vgg19,
)
from repro.models.vgg import VGG_CONFIGS
from repro.core import conv_count
from repro.nn import init
from repro.tensor import Tensor


class TestSmallModels:
    def test_small_vgg_forward(self, rng):
        model = small_vgg(num_classes=7, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert model(x).shape == (2, 7)

    def test_small_vgg_custom_input_size(self, rng):
        model = small_vgg(num_classes=4, input_size=16, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (1, 4)

    def test_small_vgg_too_small_input(self):
        with pytest.raises(ValueError):
            small_vgg(input_size=4)

    def test_small_resnet_forward(self, rng):
        model = small_resnet(num_classes=3, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert model(x).shape == (2, 3)

    def test_small_resnet_stage_structure(self, rng):
        model = small_resnet(widths=(8, 16), blocks_per_stage=2, rng=rng)
        from repro.models import BasicBlock
        blocks = [m for m in model.features if isinstance(m, BasicBlock)]
        assert len(blocks) == 4
        assert blocks[2].stride == 2   # first block of second stage downsamples


class TestPaperModels:
    """ImageNet-scale models: structure checked symbolically (fast_init +
    shape propagation through the graph builder) to avoid huge numerics."""

    def test_conv_counts_match_architectures(self):
        with init.fast_init():
            assert conv_count(vgg19().features) == 16
            assert conv_count(vgg16().features) == 13
            assert conv_count(vgg11(dataset="imagenet", num_classes=1000).features) == 8
            assert conv_count(resnet18(dataset="imagenet").features) == 20
            assert conv_count(resnet34(dataset="imagenet").features) == 36
            assert conv_count(resnet50().features) == 53
            assert conv_count(alexnet().features) == 5

    def test_vgg_config_depths(self):
        # conv layers per config: VGG-N has N-3 convs (3 FC layers).
        assert sum(1 for e in VGG_CONFIGS["vgg19"] if e != "M") == 16
        assert sum(1 for e in VGG_CONFIGS["vgg16"] if e != "M") == 13
        assert sum(1 for e in VGG_CONFIGS["vgg11"] if e != "M") == 8

    @pytest.mark.parametrize("builder,kwargs,classes", [
        (vgg19, {}, 1000),
        (resnet18, {"dataset": "imagenet", "num_classes": 1000}, 1000),
        (resnet50, {}, 1000),
        (alexnet, {}, 1000),
    ])
    def test_imagenet_symbolic_shapes(self, builder, kwargs, classes):
        with init.fast_init():
            model = builder(**kwargs)
            graph = build_forward_graph(model, batch_size=2, with_loss=False)
        logits = graph.tensors[graph.ops[-1].outputs[0]]
        assert logits.shape == (2, classes)

    def test_cifar_variants_numeric_forward(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 32, 32)).astype(np.float32))
        for builder in (vgg11, alexnet, resnet18):
            model = builder(num_classes=10, dataset="cifar", rng=rng)
            assert model(x).shape == (1, 10)

    def test_resnet50_expansion(self):
        with init.fast_init():
            model = resnet50()
        assert model.classifier.in_features == 2048

    def test_memory_efficient_flag(self):
        with init.fast_init():
            assert resnet18(dataset="imagenet", memory_efficient=True).memory_efficient_bn
            assert not resnet18(dataset="imagenet").memory_efficient_bn

    def test_invalid_dataset(self):
        with pytest.raises(ValueError):
            vgg19(dataset="mnist")
        with pytest.raises(ValueError):
            alexnet(dataset="mnist")
        with pytest.raises(ValueError):
            resnet18(dataset="mnist")


class TestRegistry:
    def test_registry_complete(self):
        assert set(MODEL_REGISTRY) == {
            "alexnet", "vgg11", "vgg16", "vgg19",
            "resnet18", "resnet34", "resnet50",
            "small_vgg", "small_resnet",
        }

    def test_build_model(self, rng):
        model = build_model("small_vgg", num_classes=3, rng=rng)
        assert model.name == "small-vgg"

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("lenet")


class TestParameterCounts:
    def test_vgg19_parameter_count(self):
        # Canonical VGG-19 (ImageNet, 1000 classes): ~143.7M parameters.
        with init.fast_init():
            total = vgg19().num_parameters()
        assert 143_000_000 < total < 145_000_000

    def test_resnet18_parameter_count(self):
        # Canonical ResNet-18: ~11.7M parameters.
        with init.fast_init():
            total = resnet18(dataset="imagenet", num_classes=1000).num_parameters()
        assert 11_000_000 < total < 12_500_000

    def test_resnet50_parameter_count(self):
        # Canonical ResNet-50: ~25.6M parameters.
        with init.fast_init():
            total = resnet50().num_parameters()
        assert 25_000_000 < total < 26_500_000

    def test_alexnet_parameter_count(self):
        # Canonical (torchvision) AlexNet: ~61.1M parameters.
        with init.fast_init():
            total = alexnet().num_parameters()
        assert 60_000_000 < total < 62_500_000
