"""Tests for the roofline cost model and Figure-1 offload analysis."""

import numpy as np
import pytest

from repro.graph import build_forward_graph, build_training_graph
from repro.models import resnet18, resnet50, small_vgg, vgg19
from repro.nn import init
from repro.profile import (
    CostModel, DeviceSpec, P100_NVLINK, analyze_offloadability,
)


@pytest.fixture(scope="module")
def vgg_graph():
    rng = np.random.default_rng(0)
    return build_training_graph(small_vgg(rng=rng), batch_size=8)


class TestCostModel:
    def test_all_ops_costed(self, vgg_graph):
        model = CostModel()
        costs = model.profile(vgg_graph)
        assert set(costs) == {op.id for op in vgg_graph.ops}
        assert all(c.seconds >= 0 for c in costs.values())

    def test_time_scales_with_batch(self, rng):
        model = CostModel()
        small = build_forward_graph(small_vgg(rng=rng), 4)
        large = build_forward_graph(small_vgg(rng=rng), 64)
        # Per-op FLOPs/bytes scale 16x with batch; total time grows strictly
        # (kernel-launch overhead is batch-invariant, so less than 16x).
        assert model.total_time(large) > 2 * model.total_time(small)
        conv_small = next(op for op in small.ops if op.op_type == "conv2d")
        conv_large = next(op for op in large.ops if op.op_type == "conv2d")
        assert model.cost(large, conv_large).flops == \
            16 * model.cost(small, conv_small).flops

    def test_phase_filter(self, vgg_graph):
        model = CostModel()
        fwd = model.total_time(vgg_graph, "forward")
        bwd = model.total_time(vgg_graph, "backward")
        assert model.total_time(vgg_graph) == pytest.approx(fwd + bwd)
        # Backward does roughly twice the conv work of forward.
        assert bwd > fwd

    def test_view_ops_are_free(self, vgg_graph):
        model = CostModel()
        for op in vgg_graph.ops:
            if op.op_type in ("flatten", "flatten_bwd", "add_bwd"):
                assert model.cost(vgg_graph, op).seconds == 0.0

    def test_memory_bound_layer_on_bandwidth_roof(self, vgg_graph):
        """ReLU cost equals its bytes over effective bandwidth (+ overhead)."""
        device = P100_NVLINK
        model = CostModel(device)
        relu = next(op for op in vgg_graph.forward_ops() if op.op_type == "relu")
        cost = model.cost(vgg_graph, relu)
        expected = device.kernel_overhead + cost.bytes_moved / (
            device.mem_bandwidth * device.mem_efficiency)
        assert cost.seconds == pytest.approx(expected)

    def test_conv_on_compute_roof(self, rng):
        with init.fast_init():
            graph = build_forward_graph(vgg19(), 16)
        device = P100_NVLINK
        model = CostModel(device)
        # A big mid-network conv is compute-bound.
        convs = [op for op in graph.forward_ops() if op.op_type == "conv2d"]
        cost = model.cost(graph, convs[3])
        effective = device.peak_flops * device.conv_efficiency * device.winograd_gain
        expected = device.kernel_overhead + cost.flops / effective
        assert cost.seconds == pytest.approx(expected)

    def test_winograd_only_for_3x3_stride1(self, rng):
        with init.fast_init():
            graph = build_forward_graph(
                resnet18(dataset="imagenet", num_classes=1000), 16)
        base = CostModel(P100_NVLINK.with_(winograd_gain=1.0))
        fast = CostModel(P100_NVLINK)
        for op in graph.forward_ops():
            if op.op_type != "conv2d":
                continue
            ratio = base.cost(graph, op).seconds / fast.cost(graph, op).seconds
            if op.attrs["kernel"] == (3, 3) and op.attrs["stride"] == (1, 1):
                assert ratio > 1.5
            else:
                assert ratio == pytest.approx(1.0)

    def test_unknown_op_type_raises(self):
        from repro.graph import Graph
        graph = Graph("t")
        a = graph.add_tensor("a", (1,))
        b = graph.add_tensor("b", (1,))
        graph.add_op("op", "fft", [a], [b])
        with pytest.raises(NotImplementedError):
            CostModel().cost(graph, graph.ops[0])

    def test_device_with_override(self):
        fast = P100_NVLINK.with_(peak_flops=2 * P100_NVLINK.peak_flops)
        assert fast.peak_flops == 2 * P100_NVLINK.peak_flops
        assert fast.nvlink_bandwidth == P100_NVLINK.nvlink_bandwidth


class TestOffloadAnalysis:
    """Calibration targets from the paper (§2.4, §6.2, §6.3); see
    EXPERIMENTS.md for measured-vs-paper discussion."""

    @pytest.fixture(scope="class")
    def analyses(self):
        result = {}
        with init.fast_init():
            for name, builder in {
                "vgg19": lambda: vgg19(),
                "resnet18": lambda: resnet18(dataset="imagenet",
                                             num_classes=1000),
                "resnet18-me": lambda: resnet18(dataset="imagenet",
                                                num_classes=1000,
                                                memory_efficient=True),
                "resnet50": lambda: resnet50(),
            }.items():
                graph = build_training_graph(builder(), 64)
                result[name] = analyze_offloadability(graph)
        return result

    def test_vgg19_fully_offloadable(self, analyses):
        # Paper Figure 1a: VGG-19's intermediate results can be completely
        # offloaded (cumulative offload-able eventually exceeds generated).
        assert analyses["vgg19"].fully_offloadable()

    def test_resnet18_partial(self, analyses):
        # Paper: ~55% for ResNet-18.
        ratio = (analyses["resnet18"].total_offloadable
                 / analyses["resnet18"].total_generated)
        assert 0.40 < ratio < 0.75

    def test_resnet50_lowest(self, analyses):
        # Paper §6.2: ~40% for ResNet-50 — lower than ResNet-18.
        r50 = (analyses["resnet50"].total_offloadable
               / analyses["resnet50"].total_generated)
        r18 = (analyses["resnet18"].total_offloadable
               / analyses["resnet18"].total_generated)
        assert r50 < r18
        assert 0.30 < r50 < 0.65

    def test_memory_efficient_raises_fraction(self, analyses):
        # Paper §6.3: in-place ABN lifts ResNet-18 from ~55% to ~70%,
        # still short of full offload-ability.
        plain = (analyses["resnet18"].total_offloadable
                 / analyses["resnet18"].total_generated)
        efficient = (analyses["resnet18-me"].total_offloadable
                     / analyses["resnet18-me"].total_generated)
        assert efficient > plain
        assert efficient < 1.0

    def test_memory_bound_layers_starved(self, analyses):
        # Paper Figure 1: pooling and BN layers almost never have enough
        # time to offload what they generate.
        for analysis in analyses.values():
            starved_types = {r.op_type for r in analysis.starved_layers()}
            assert starved_types & {"maxpool2d", "batchnorm", "relu"}

    def test_cumulative_series_monotone(self, analyses):
        for analysis in analyses.values():
            generated = [r.cumulative_generated for r in analysis.rows]
            offloadable = [r.cumulative_offloadable for r in analysis.rows]
            assert generated == sorted(generated)
            assert offloadable == sorted(offloadable)

    def test_fraction_capped_at_one(self, analyses):
        assert analyses["vgg19"].offloadable_fraction == 1.0
