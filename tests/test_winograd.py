"""Tests for the Winograd F(2x2,3x3) fast convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, conv2d
from repro.tensor.winograd import (
    MULTIPLY_REDUCTION, winograd_conv2d, winograd_forward,
)


class TestEquivalence:
    @pytest.mark.parametrize("padding", [0, 1, 2, ((1, 0), (0, 1))])
    def test_matches_im2col(self, rng, padding):
        x = Tensor(rng.standard_normal((2, 3, 12, 12)), dtype=np.float64)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)), dtype=np.float64)
        b = Tensor(rng.standard_normal(4), dtype=np.float64)
        ref = conv2d(x, w, b, stride=1, padding=padding)
        win = winograd_conv2d(x, w, b, padding=padding)
        np.testing.assert_allclose(win.numpy(), ref.numpy(), rtol=1e-10,
                                   atol=1e-10)

    def test_odd_output_sizes(self, rng):
        # Output dims not divisible by the 2x2 tile need the crop path.
        x = Tensor(rng.standard_normal((1, 2, 9, 11)), dtype=np.float64)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=1, padding=0)
        win = winograd_conv2d(x, w, None, padding=0)
        assert win.shape == ref.shape == (1, 2, 7, 9)
        np.testing.assert_allclose(win.numpy(), ref.numpy(), rtol=1e-10)

    def test_float32_accuracy(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 16, 16)).astype(np.float32))
        w = Tensor((rng.standard_normal((8, 4, 3, 3)) * 0.2).astype(np.float32))
        ref = conv2d(x, w, None, stride=1, padding=1)
        win = winograd_conv2d(x, w, None, padding=1)
        np.testing.assert_allclose(win.numpy(), ref.numpy(), rtol=1e-3,
                                   atol=1e-4)

    def test_gradients_match_im2col(self, rng):
        x_data = rng.standard_normal((1, 2, 8, 8))
        w_data = rng.standard_normal((2, 2, 3, 3))
        grads = {}
        for name, fn in [("im2col", lambda a, b: conv2d(a, b, None, 1, 1)),
                         ("winograd", lambda a, b: winograd_conv2d(a, b, None, 1))]:
            x = Tensor(x_data, requires_grad=True, dtype=np.float64)
            w = Tensor(w_data, requires_grad=True, dtype=np.float64)
            fn(x, w).sum().backward()
            grads[name] = (x.grad, w.grad)
        np.testing.assert_allclose(grads["winograd"][0], grads["im2col"][0])
        np.testing.assert_allclose(grads["winograd"][1], grads["im2col"][1])


class TestValidation:
    def test_rejects_non_3x3(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 5, 5))
        with pytest.raises(ValueError):
            winograd_forward(x, w, None, ((0, 0), (0, 0)))

    def test_rejects_stride(self, rng):
        from repro.tensor.winograd import _WinogradConv2d
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        fn = _WinogradConv2d()
        with pytest.raises(ValueError):
            fn.forward(x, w, None, (2, 2), ((0, 0), (0, 0)))

    def test_too_small_input(self, rng):
        x = rng.standard_normal((1, 1, 2, 2))
        w = rng.standard_normal((1, 1, 3, 3))
        with pytest.raises(ValueError):
            winograd_forward(x, w, None, ((0, 0), (0, 0)))

    def test_multiply_reduction_constant(self):
        # The 2.25x arithmetic reduction quoted everywhere for F(2x2,3x3).
        assert MULTIPLY_REDUCTION == pytest.approx(2.25)


@given(
    height=st.integers(5, 14),
    width=st.integers(5, 14),
    channels=st.integers(1, 3),
    filters=st.integers(1, 3),
    pad=st.integers(0, 1),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_winograd_equivalence_property(height, width, channels, filters,
                                       pad, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((1, channels, height, width)),
               dtype=np.float64)
    w = Tensor(rng.standard_normal((filters, channels, 3, 3)),
               dtype=np.float64)
    ref = conv2d(x, w, None, stride=1, padding=pad)
    win = winograd_conv2d(x, w, None, padding=pad)
    np.testing.assert_allclose(win.numpy(), ref.numpy(), rtol=1e-9, atol=1e-9)
