"""Tests for the training loop and evaluation."""

import numpy as np
import pytest

from repro.data import ShapesDataset
from repro.experiments.training import evaluate, train_classifier
from repro.models import small_resnet, small_vgg


@pytest.fixture(scope="module")
def datasets():
    train = ShapesDataset(num_samples=96, image_size=16, num_classes=3,
                          seed=1, noise=0.1)
    test = ShapesDataset(num_samples=48, image_size=16, num_classes=3,
                         seed=99, noise=0.1)
    return train, test


class TestEvaluate:
    def test_error_in_unit_interval(self, datasets, rng):
        _, test = datasets
        model = small_vgg(num_classes=3, input_size=16, rng=rng)
        error = evaluate(model, test, batch_size=16)
        assert 0.0 <= error <= 1.0

    def test_untrained_model_near_chance(self, datasets, rng):
        _, test = datasets
        model = small_vgg(num_classes=3, input_size=16, rng=rng)
        error = evaluate(model, test, batch_size=16)
        assert error > 0.3  # 3 classes -> chance error ~0.67

    def test_restores_training_mode(self, datasets, rng):
        _, test = datasets
        model = small_vgg(num_classes=3, input_size=16, rng=rng)
        model.train()
        evaluate(model, test)
        assert model.training


class TestTrainClassifier:
    def test_learns_the_task(self, datasets, rng):
        train, test = datasets
        model = small_resnet(num_classes=3, input_size=16,
                             widths=(8, 16), rng=rng)
        result = train_classifier(model, train, test, epochs=5,
                                  batch_size=16, lr=0.05, seed=0)
        first, last = result.history[0], result.history[-1]
        assert last.train_loss < first.train_loss
        assert result.final_test_error < 0.5

    def test_history_structure(self, datasets, rng):
        train, test = datasets
        model = small_vgg(num_classes=3, input_size=16,
                          config=[8, "M", 16, "M"], rng=rng)
        result = train_classifier(model, train, test, epochs=3,
                                  batch_size=16, lr=0.01, seed=0)
        assert len(result.history) == 3
        assert [s.epoch for s in result.history] == [1, 2, 3]
        assert len(result.error_curve()) == 3
        assert result.best_test_error <= result.final_test_error + 1e-9

    def test_default_milestones_decay_lr(self, datasets, rng):
        train, test = datasets
        model = small_vgg(num_classes=3, input_size=16,
                          config=[8, "M"], rng=rng)
        result = train_classifier(model, train, test, epochs=5,
                                  batch_size=16, lr=0.1, seed=0)
        lrs = [s.lr for s in result.history]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[-1] < 0.1

    def test_deterministic_given_seed(self, datasets):
        train, test = datasets
        results = []
        for _ in range(2):
            model = small_vgg(num_classes=3, input_size=16,
                              config=[8, "M"],
                              rng=np.random.default_rng(7))
            result = train_classifier(model, train, test, epochs=2,
                                      batch_size=16, lr=0.01, seed=3)
            results.append(result.history[-1].train_loss)
        assert results[0] == pytest.approx(results[1], rel=1e-5)
