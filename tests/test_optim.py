"""Unit tests for SGD and the learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, MultiStepLR, StepLR


def make_param(value=1.0, grad=0.5):
    param = Parameter(np.array([value], dtype=np.float32))
    param.grad = np.array([grad], dtype=np.float32)
    return param


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0, 0.5)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_skips_param_without_grad(self):
        p = make_param()
        p.grad = None
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_weight_decay(self):
        p = make_param(1.0, 0.0)
        SGD([p], lr=0.1, weight_decay=0.1).step()
        np.testing.assert_allclose(p.data, [0.99], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()          # v=1, w=-1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()          # v=1.9, w=-2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_nesterov_differs_from_plain(self):
        p1, p2 = make_param(0.0, 1.0), make_param(0.0, 1.0)
        SGD([p1], lr=1.0, momentum=0.9).step()
        SGD([p2], lr=1.0, momentum=0.9, nesterov=True).step()
        assert p1.data[0] != p2.data[0]

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)

    def test_matches_reference_trajectory(self):
        # Reference: classic momentum+wd update computed by hand.
        p = make_param(1.0, 0.2)
        opt = SGD([p], lr=0.1, momentum=0.5, weight_decay=0.01)
        trajectory = []
        for _ in range(3):
            p.grad = np.array([0.2], dtype=np.float32)
            opt.step()
            trajectory.append(float(p.data[0]))
        w, v = 1.0, 0.0
        expected = []
        for _ in range(3):
            g = 0.2 + 0.01 * w
            v = 0.5 * v + g
            w -= 0.1 * v
            expected.append(w)
        np.testing.assert_allclose(trajectory, expected, rtol=1e-5)


class TestSchedulers:
    def _opt(self, lr=1.0):
        return SGD([make_param()], lr=lr)

    def test_step_lr(self):
        # step() is called at the END of each epoch; the decayed rate takes
        # effect once `step_size` epochs have completed.
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01], rtol=1e-9)

    def test_step_lr_validates(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)

    def test_multistep_lr_paper_schedule(self):
        # Paper §5.2.1: decay 10x at epochs 150 and 250 of 350.
        opt = self._opt(0.1)
        sched = MultiStepLR(opt, milestones=[150, 250], gamma=0.1)
        lr_by_epoch = {}
        for epoch in range(1, 351):
            lr_by_epoch[epoch] = sched.step()
        assert lr_by_epoch[149] == pytest.approx(0.1)
        assert lr_by_epoch[150] == pytest.approx(0.01)
        assert lr_by_epoch[250] == pytest.approx(0.001)
        assert lr_by_epoch[350] == pytest.approx(0.001)

    def test_multistep_updates_optimizer(self):
        opt = self._opt(1.0)
        sched = MultiStepLR(opt, milestones=[1])
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_unsorted_milestones_accepted(self):
        opt = self._opt(1.0)
        sched = MultiStepLR(opt, milestones=[5, 2])
        assert sched.milestones == [2, 5]
