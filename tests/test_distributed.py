"""Tests for the §6.4 distributed-training performance model."""

import pytest

from repro.distributed import (
    TrainingProfile, allreduce_seconds, epoch_seconds, speedup_curve,
)


BASE = TrainingProfile(name="base", batch_size=64,
                       forward_seconds=0.1, backward_seconds=0.2,
                       gradient_bytes=500 * 2**20)
SPLIT = TrainingProfile(name="split", batch_size=384,
                        forward_seconds=0.61, backward_seconds=1.22,
                        gradient_bytes=500 * 2**20)


class TestAllreduce:
    def test_lower_bound_formula(self):
        # 2|G| / (alpha * B), |G| in bytes, B in bits/s.
        seconds = allreduce_seconds(10 * 2**20, 10e9, alpha=0.8)
        assert seconds == pytest.approx(2 * 10 * 2**20 * 8 / (0.8 * 10e9))

    def test_scales_inversely_with_bandwidth(self):
        slow = allreduce_seconds(2**20, 1e9)
        fast = allreduce_seconds(2**20, 10e9)
        assert slow == pytest.approx(10 * fast)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            allreduce_seconds(1, 0)
        with pytest.raises(ValueError):
            allreduce_seconds(1, 1e9, alpha=0.0)
        with pytest.raises(ValueError):
            allreduce_seconds(1, 1e9, alpha=1.5)


class TestEpochModel:
    def test_compute_bound_regime(self):
        # Huge bandwidth: comm hidden behind backward.
        t = epoch_seconds(BASE, dataset_size=640, bandwidth_bits_per_s=1e15)
        assert t == pytest.approx(10 * (0.1 + 0.2))

    def test_bandwidth_bound_regime(self):
        # Tiny bandwidth: epoch dominated by allreduce.
        comm = allreduce_seconds(BASE.gradient_bytes, 1e8)
        t = epoch_seconds(BASE, dataset_size=640, bandwidth_bits_per_s=1e8)
        assert t == pytest.approx(10 * (0.1 + comm))

    def test_max_semantics(self):
        # The pipelined model takes max(backward, comm), not the sum.
        bandwidth = 1e9
        comm = allreduce_seconds(BASE.gradient_bytes, bandwidth)
        step = BASE.step_seconds(bandwidth)
        assert step == pytest.approx(BASE.forward_seconds
                                     + max(BASE.backward_seconds, comm))


class TestSpeedupCurve:
    def test_monotone_nonincreasing_in_bandwidth(self):
        curve = speedup_curve(BASE, SPLIT, [0.5, 1, 2, 4, 8, 16, 32],
                              dataset_size=64 * 100)
        speedups = [s for _, s in curve]
        assert all(a >= b - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_low_bandwidth_limit_is_batch_ratio(self):
        curve = speedup_curve(BASE, SPLIT, [1e-4], dataset_size=64 * 100)
        _, speedup = curve[0]
        assert speedup == pytest.approx(SPLIT.batch_size / BASE.batch_size,
                                        rel=0.01)

    def test_high_bandwidth_limit_is_compute_ratio(self):
        curve = speedup_curve(BASE, SPLIT, [1e9 * 1e6], dataset_size=64 * 100)
        _, speedup = curve[0]
        per_sample_base = (BASE.forward_seconds + BASE.backward_seconds) / 64
        per_sample_split = (SPLIT.forward_seconds + SPLIT.backward_seconds) / 384
        assert speedup == pytest.approx(per_sample_base / per_sample_split,
                                        rel=0.01)

    def test_speedup_above_two_at_10gbit(self):
        # Paper Figure 11: >=2x speedup at typical cloud bandwidth.
        curve = speedup_curve(BASE, SPLIT, [10], dataset_size=64 * 100)
        assert curve[0][1] > 1.5
