"""Wavefront executor determinism: serial vs parallel, any valid order.

The scheduler's contract is strong — for ANY worker count and ANY
dependency-respecting serialization, losses and gradients are
byte-identical to the serial walk of ``graph.ops``.  The matrix below
covers the model zoo shapes that stress it: split transforms (parallel
patch chains sharing weights through ``grad_acc`` accumulation),
residual graphs (multi-consumer activations), and dropout (per-op
seeded masks).
"""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.graph import build_training_graph
from repro.graph.executor import GraphExecutor
from repro.models import ConvClassifier, small_resnet, small_vgg
from repro.nn import Conv2d, Dropout, Linear, ReLU, Sequential


def _dropout_model(rng):
    features = Sequential(
        Conv2d(3, 4, kernel_size=3, padding=1, rng=rng), ReLU())
    classifier = Sequential(
        Linear(4 * 8 * 8, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 16, rng=rng), ReLU(), Dropout(0.5),
        Linear(16, 4, rng=rng),
    )
    return ConvClassifier(features, classifier, name="dropout-test",
                          input_size=8)


def _case(name):
    """(model, x, y) for one matrix entry; fresh weights per call."""
    rng = np.random.default_rng(0)
    if name == "dropout":
        model = _dropout_model(rng)
        x = rng.standard_normal((2, 3, 8, 8))
    else:
        base, _, splits = name.partition(":")
        make = {"vgg": small_vgg, "resnet": small_resnet}[base]
        model = make(num_classes=4, rng=rng)
        if splits:
            n = int(splits)
            model = to_split_cnn(model, depth=0.5, num_splits=(n, n))
        x = rng.standard_normal((2, 3, 32, 32))
    y = np.array([1, 3])
    return model, x, y


CASES = ["vgg", "vgg:2", "vgg:4", "resnet", "resnet:2", "dropout"]


def _outputs_bytes(outputs):
    return {key: value.tobytes() for key, value in outputs.items()}


class TestSerialParallelParity:
    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_byte_identical_loss_and_gradients(self, case, workers):
        model, x, y = _case(case)
        graph = build_training_graph(model, x.shape[0])
        params = GraphExecutor.parameters_from_model(graph, model)
        serial = GraphExecutor(graph, params).run(x, y)
        parallel = GraphExecutor(graph, params, workers=workers).run(x, y)
        assert serial.keys() == parallel.keys()
        assert _outputs_bytes(serial) == _outputs_bytes(parallel)

    def test_parallel_run_is_repeatable(self):
        model, x, y = _case("vgg:2")
        graph = build_training_graph(model, x.shape[0])
        params = GraphExecutor.parameters_from_model(graph, model)
        executor = GraphExecutor(graph, params, workers=4)
        first = _outputs_bytes(executor.run(x, y))
        second = _outputs_bytes(executor.run(x, y))
        assert first == second


# ----------------------------------------------------------------------
# Seeded-shuffle fuzz: any dependency-respecting serialization agrees
# ----------------------------------------------------------------------
def _shuffled_topo_order(graph, seed):
    """A random topological order of ``graph.ops`` (Kahn's, seeded)."""
    rng = np.random.default_rng(seed)
    deps = graph.op_dependencies()
    remaining = {op_id: len(d) for op_id, d in deps.items()}
    dependents = {}
    for op_id, op_deps in deps.items():
        for dep in op_deps:
            dependents.setdefault(dep, []).append(op_id)
    by_id = {op.id: op for op in graph.ops}
    ready = sorted(op_id for op_id, count in remaining.items() if count == 0)
    order = []
    while ready:
        op_id = ready.pop(int(rng.integers(len(ready))))
        order.append(by_id[op_id])
        for dep_id in dependents.get(op_id, ()):
            remaining[dep_id] -= 1
            if remaining[dep_id] == 0:
                ready.append(dep_id)
    assert len(order) == len(graph.ops), "dependency cycle"
    return order


class TestShuffledSerializationFuzz:
    @pytest.mark.parametrize("case", ["vgg:2", "resnet", "dropout"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shuffled_order_byte_identical(self, case, seed):
        model, x, y = _case(case)
        graph = build_training_graph(model, x.shape[0])
        params = GraphExecutor.parameters_from_model(graph, model)
        baseline = _outputs_bytes(GraphExecutor(graph, params).run(x, y))

        shuffled = build_training_graph(model, x.shape[0])
        order = _shuffled_topo_order(shuffled, seed)
        assert [op.id for op in order] != [op.id for op in shuffled.ops] \
            or seed > 0  # seed 0 may coincide, others should reorder
        shuffled.ops = order
        shuffled.validate()      # still a legal serialization
        for workers in (1, 4):
            outputs = GraphExecutor(shuffled, params,
                                    workers=workers).run(x, y)
            assert _outputs_bytes(outputs) == baseline


# ----------------------------------------------------------------------
# Eager freeing and constructor validation
# ----------------------------------------------------------------------
class TestEagerFree:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_intermediates_freed_during_run(self, workers):
        model, x, y = _case("vgg:2")
        graph = build_training_graph(model, x.shape[0])
        params = GraphExecutor.parameters_from_model(graph, model)
        eager = GraphExecutor(graph, params, workers=workers)
        keep = GraphExecutor(graph, params, eager_free=False)
        eager_out = eager.run(x, y)
        keep_out = keep.run(x, y)
        # Same numbers either way...
        assert _outputs_bytes(eager_out) == _outputs_bytes(keep_out)
        # ...but the eager run retired consumed intermediates and spent
        # contexts on the fly instead of holding one whole step.
        assert len(eager.values) < len(keep.values)
        assert not eager._contexts and keep._contexts
        # Outputs and parameters survive the freeing.
        for tensor_id in eager._pinned:
            assert tensor_id in eager.values

    def test_workers_require_context_reuse(self):
        model, x, y = _case("vgg")
        graph = build_training_graph(model, x.shape[0])
        params = GraphExecutor.parameters_from_model(graph, model)
        with pytest.raises(ValueError, match="reuse_contexts"):
            GraphExecutor(graph, params, workers=2, reuse_contexts=False)
        with pytest.raises(ValueError, match="workers"):
            GraphExecutor(graph, params, workers=0)

    def test_replay_mode_disables_eager_free(self):
        model, x, y = _case("vgg")
        graph = build_training_graph(model, x.shape[0])
        params = GraphExecutor.parameters_from_model(graph, model)
        executor = GraphExecutor(graph, params, reuse_contexts=False)
        assert not executor.eager_free
        executor.run(x, y)       # replay re-reads forward inputs late
