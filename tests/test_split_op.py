"""Property tests for split execution of single window ops (paper Eq. 3-7).

The central invariants:

- the split op always produces exactly the unsplit output *shape*;
- ``k == s`` (natural splitting): outputs are bit-exact;
- ``k < s`` (dead gaps between windows): outputs are bit-exact;
- ``k > s``: outputs are exact everywhere except positions whose window
  straddles a patch boundary (the deliberate semantic change of §3);
- gradients flow through patches back to the full input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import SplitScheme, WindowSpec, compute_input_split
from repro.core.split_op import plan_split_2d, run_split_op, split_conv2d, split_pool2d
from repro.tensor import Tensor, avg_pool2d, conv2d, max_pool2d


def even_schemes(spec, size, parts):
    out_size = spec.output_size(size)
    return SplitScheme.even(out_size, parts)


class TestShapes:
    @pytest.mark.parametrize("parts", [(1, 1), (2, 2), (2, 3), (3, 3)])
    def test_split_conv_shape_matches_unsplit(self, rng, parts):
        x = Tensor(rng.standard_normal((2, 3, 18, 18)), dtype=np.float64)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=1, padding=1)
        scheme_h = SplitScheme.even(18, parts[0])
        scheme_w = SplitScheme.even(18, parts[1])
        out = split_conv2d(x, w, None, (1, 1), ((1, 1), (1, 1)),
                           scheme_h, scheme_w)
        assert out.shape == ref.shape

    def test_strided_conv_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 17, 17)), dtype=np.float64)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=2, padding=1)
        scheme = SplitScheme.even(ref.shape[2], 3)
        out = split_conv2d(x, w, None, (2, 2), ((1, 1), (1, 1)), scheme, scheme)
        assert out.shape == ref.shape


class TestExactCases:
    def test_pool_kernel_equals_stride_exact(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 16, 16)), dtype=np.float64)
        ref = max_pool2d(x, 2, 2)
        scheme = SplitScheme.even(8, 4)
        out = split_pool2d(x, "max", (2, 2), (2, 2), ((0, 0), (0, 0)),
                           scheme, scheme)
        np.testing.assert_array_equal(out.numpy(), ref.numpy())

    def test_avg_pool_exact(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 12, 12)), dtype=np.float64)
        ref = avg_pool2d(x, 3, 3)
        scheme = SplitScheme.even(4, 2)
        out = split_pool2d(x, "avg", (3, 3), (3, 3), ((0, 0), (0, 0)),
                           scheme, scheme)
        np.testing.assert_allclose(out.numpy(), ref.numpy(), rtol=1e-12)

    def test_1x1_stride2_conv_exact(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 16, 16)), dtype=np.float64)
        w = Tensor(rng.standard_normal((4, 3, 1, 1)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=2)
        scheme = SplitScheme.even(8, 2)
        out = split_conv2d(x, w, None, (2, 2), ((0, 0), (0, 0)), scheme, scheme)
        np.testing.assert_allclose(out.numpy(), ref.numpy(), rtol=1e-12)

    def test_single_patch_is_identity_transform(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 10, 10)), dtype=np.float64)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=1, padding=1)
        one = SplitScheme.trivial()
        out = split_conv2d(x, w, None, (1, 1), ((1, 1), (1, 1)), one, one)
        np.testing.assert_allclose(out.numpy(), ref.numpy(), rtol=1e-12)


class TestInteriorExactness:
    def test_conv_exact_away_from_boundaries(self, rng):
        """For k>s, only outputs whose windows touch a patch boundary differ."""
        x = Tensor(rng.standard_normal((1, 2, 16, 16)), dtype=np.float64)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=1, padding=1).numpy()
        scheme = SplitScheme.even(16, 4)
        out = split_conv2d(x, w, None, (1, 1), ((1, 1), (1, 1)),
                           scheme, scheme).numpy()
        diff = np.abs(out - ref).max(axis=(0, 1))
        boundaries = {4, 8, 12}
        for r in range(16):
            row_crosses = any(r - 1 < b < r + 2 for b in boundaries)
            for c in range(16):
                col_crosses = any(c - 1 < b < c + 2 for b in boundaries)
                if not row_crosses and not col_crosses:
                    assert diff[r, c] < 1e-10, (r, c)

    def test_split_changes_semantics_at_boundaries(self, rng):
        """k>s splitting is NOT semantics-preserving (the paper's §3 point)."""
        x = Tensor(rng.standard_normal((1, 1, 12, 12)), dtype=np.float64)
        w = Tensor(rng.standard_normal((1, 1, 3, 3)), dtype=np.float64)
        ref = conv2d(x, w, None, stride=1, padding=1).numpy()
        scheme = SplitScheme.even(12, 2)
        out = split_conv2d(x, w, None, (1, 1), ((1, 1), (1, 1)),
                           scheme, scheme).numpy()
        assert np.abs(out - ref).max() > 1e-8


class TestGradients:
    def test_gradients_cover_whole_input(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 12, 12)), requires_grad=True,
                   dtype=np.float64)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)), requires_grad=True,
                   dtype=np.float64)
        scheme = SplitScheme.even(12, 3)
        out = split_conv2d(x, w, None, (1, 1), ((1, 1), (1, 1)), scheme, scheme)
        out.sum().backward()
        assert x.grad.shape == (1, 2, 12, 12)
        # Every input element is consumed by some patch (I within [lb, ub]),
        # so every gradient entry is populated.
        assert (np.abs(x.grad) > 0).mean() > 0.95
        assert w.grad is not None

    def test_split_conv_gradcheck(self, rng):
        from conftest import gradcheck
        w = rng.standard_normal((2, 2, 3, 3))
        scheme = SplitScheme.even(8, 2)
        gradcheck(
            lambda t: split_conv2d(t, Tensor(w, dtype=np.float64), None,
                                   (1, 1), ((1, 1), (1, 1)), scheme, scheme),
            rng.standard_normal((1, 2, 8, 8)),
        )


class TestRunSplitOp:
    def test_custom_patch_op_receives_padding(self, rng):
        spec = WindowSpec(3, 1, 1, 1)
        plan = plan_split_2d(spec, spec, (12, 12),
                             SplitScheme.even(12, 2), SplitScheme.even(12, 2))
        seen = []

        def patch_op(patch, padding):
            seen.append(padding)
            return conv2d(patch, Tensor(np.ones((1, 1, 3, 3)), dtype=np.float64),
                          None, stride=1, padding=padding)

        x = Tensor(rng.standard_normal((1, 1, 12, 12)), dtype=np.float64)
        out = run_split_op(x, plan, patch_op)
        assert out.shape == (1, 1, 12, 12)
        assert len(seen) == 4
        # First patch keeps the original begin padding.
        assert seen[0][0][0] == 1 and seen[0][1][0] == 1

    def test_bad_pool_kind(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 8, 8)))
        with pytest.raises(ValueError):
            split_pool2d(x, "median", (2, 2), (2, 2), ((0, 0), (0, 0)),
                         SplitScheme.even(4, 2), SplitScheme.even(4, 2))


# ----------------------------------------------------------------------
# Property-based equivalence sweep
# ----------------------------------------------------------------------
@st.composite
def conv_cases(draw):
    kernel = draw(st.integers(1, 4))
    stride = draw(st.integers(1, min(kernel, 2)))
    pad = draw(st.integers(0, kernel - 1))
    size = draw(st.integers(10, 20))
    parts = draw(st.integers(1, 3))
    return kernel, stride, pad, size, parts


@given(conv_cases())
@settings(max_examples=60, deadline=None)
def test_split_conv_shape_property(case):
    kernel, stride, pad, size, parts = case
    rng = np.random.default_rng(0)
    spec = WindowSpec(kernel, stride, pad, pad)
    out_size = spec.output_size(size)
    if out_size < parts:
        return
    scheme = SplitScheme.even(out_size, parts)
    x = Tensor(rng.standard_normal((1, 2, size, size)), dtype=np.float64)
    w = Tensor(rng.standard_normal((2, 2, kernel, kernel)), dtype=np.float64)
    ref = conv2d(x, w, None, stride=stride, padding=pad)
    try:
        out = split_conv2d(x, w, None, (stride, stride),
                           ((pad, pad), (pad, pad)), scheme, scheme)
    except ValueError:
        return  # boundary packing infeasible for this tiny configuration
    assert out.shape == ref.shape
    if kernel == stride:
        np.testing.assert_allclose(out.numpy(), ref.numpy(), rtol=1e-10,
                                   atol=1e-10)


@given(st.integers(2, 4), st.integers(8, 20), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_split_pool_keq_s_always_exact(kernel, size, parts):
    rng = np.random.default_rng(1)
    spec = WindowSpec(kernel, kernel)
    out_size = spec.output_size(size)
    if out_size < parts:
        return
    scheme = SplitScheme.even(out_size, parts)
    x = Tensor(rng.standard_normal((1, 1, size, size)), dtype=np.float64)
    ref = max_pool2d(x, kernel, kernel)
    out = split_pool2d(x, "max", (kernel, kernel), (kernel, kernel),
                       ((0, 0), (0, 0)), scheme, scheme)
    np.testing.assert_array_equal(out.numpy(), ref.numpy())
