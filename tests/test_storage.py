"""Tests for TSO storage assignment and the §4.2 optimizations."""

import numpy as np
import pytest

from repro.graph import build_training_graph
from repro.hmms import POOL_DEVICE_GENERAL, POOL_DEVICE_PARAM, assign_storage
from repro.models import small_resnet, small_vgg


@pytest.fixture(scope="module")
def vgg_graph():
    return build_training_graph(small_vgg(rng=np.random.default_rng(0)), 4)


@pytest.fixture(scope="module")
def resnet_graph():
    return build_training_graph(small_resnet(rng=np.random.default_rng(0)), 4)


class TestAssignment:
    def test_every_tensor_mapped(self, vgg_graph):
        assignment = assign_storage(vgg_graph)
        assert set(assignment.tso_of) == set(vgg_graph.tensors)

    def test_parameters_in_param_pool(self, vgg_graph):
        assignment = assign_storage(vgg_graph)
        for tensor in vgg_graph.tensors.values():
            pool = assignment.tso_for_tensor(tensor.id).pool
            if tensor.kind in ("parameter", "gradient"):
                assert pool == POOL_DEVICE_PARAM, tensor.name
            else:
                assert pool == POOL_DEVICE_GENERAL, tensor.name

    def test_tso_size_is_max_of_tensors(self, vgg_graph):
        assignment = assign_storage(vgg_graph)
        for tso in assignment.tsos.values():
            largest = max(vgg_graph.tensor(t).nbytes for t in tso.tensor_ids)
            assert tso.size == largest

    def test_refcount_matches_tensor_count(self, vgg_graph):
        assignment = assign_storage(vgg_graph)
        for tso in assignment.tsos.values():
            assert tso.refcount == len(tso.tensor_ids)


class TestInPlaceRelu:
    def test_relu_shares_input_tso(self, vgg_graph):
        assignment = assign_storage(vgg_graph)
        assert assignment.inplace_relu_applied > 0
        relu_ops = [op for op in vgg_graph.forward_ops()
                    if op.op_type == "relu"]
        shared = sum(
            assignment.tso_of[op.outputs[0]] == assignment.tso_of[op.inputs[0]]
            for op in relu_ops
        )
        assert shared == len(relu_ops)  # every VGG ReLU input is reusable

    def test_optimization_can_be_disabled(self, vgg_graph):
        on = assign_storage(vgg_graph, inplace_relu=True)
        off = assign_storage(vgg_graph, inplace_relu=False)
        assert off.inplace_relu_applied == 0
        assert len(off.tsos) > len(on.tsos)

    def test_disabled_relu_outputs_get_own_tso(self, vgg_graph):
        off = assign_storage(vgg_graph, inplace_relu=False)
        relu = next(op for op in vgg_graph.forward_ops()
                    if op.op_type == "relu")
        assert off.tso_of[relu.outputs[0]] != off.tso_of[relu.inputs[0]]

    def test_legality_multi_consumer_input_not_shared(self, resnet_graph):
        """A block-input tensor feeding both conv1 and the residual add must
        never be overwritten in place by a downstream ReLU."""
        assignment = assign_storage(resnet_graph)
        for op in resnet_graph.forward_ops():
            if op.inplace_of is None:
                continue
            source = resnet_graph.tensor(op.inplace_of)
            if assignment.tso_of[op.outputs[0]] == assignment.tso_of[source.id]:
                consumers = set(source.consumers)
                assert consumers == {op.id}, \
                    f"{op.name} overwrote multi-consumer {source.name}"


class TestSummationSharing:
    def test_residual_error_terms_share(self, resnet_graph):
        assignment = assign_storage(resnet_graph)
        assert assignment.summation_shares_applied > 0
        for op in resnet_graph.backward_ops():
            if op.op_type != "add_bwd":
                continue
            upstream = assignment.tso_of[op.inputs[0]]
            for grad in op.outputs:
                assert assignment.tso_of[grad] == upstream

    def test_disabled_creates_distinct_tsos(self, resnet_graph):
        off = assign_storage(resnet_graph, share_summation=False)
        assert off.summation_shares_applied == 0
        for op in resnet_graph.backward_ops():
            if op.op_type != "add_bwd":
                continue
            tso_ids = {off.tso_of[g] for g in op.outputs}
            assert len(tso_ids) == len(op.outputs)

    def test_sharing_reduces_total_bytes(self, resnet_graph):
        on = assign_storage(resnet_graph, share_summation=True)
        off = assign_storage(resnet_graph, share_summation=False)
        assert on.total_bytes(POOL_DEVICE_GENERAL) < \
            off.total_bytes(POOL_DEVICE_GENERAL)


class TestViews:
    def test_flatten_aliases(self, vgg_graph):
        assignment = assign_storage(vgg_graph)
        flatten = next(op for op in vgg_graph.forward_ops()
                       if op.op_type == "flatten")
        assert assignment.tso_of[flatten.outputs[0]] == \
            assignment.tso_of[flatten.inputs[0]]
        assert assignment.view_shares_applied > 0
