"""End-to-end integration tests across the whole stack.

These are the "does the paper's pipeline hold together" checks: split
models train numerically; the same split models plan + simulate safely;
stochastic training transfers to the unsplit network; the full five-step
HMMS flow is consistent with the simulator's safety checker.
"""

import numpy as np
import pytest

from repro.core import to_split_cnn
from repro.data import ShapesDataset
from repro.experiments.training import evaluate, train_classifier
from repro.graph import build_training_graph
from repro.hmms import HMMSPlanner
from repro.models import small_resnet, small_vgg
from repro.profile import P100_NVLINK
from repro.sim import GPUSimulator


@pytest.fixture(scope="module")
def tiny_data():
    train = ShapesDataset(num_samples=96, image_size=16, num_classes=3,
                          seed=2, noise=0.1)
    test = ShapesDataset(num_samples=48, image_size=16, num_classes=3,
                         seed=77, noise=0.1)
    return train, test


class TestSplitTraining:
    def test_split_model_trains(self, tiny_data):
        train, test = tiny_data
        base = small_resnet(num_classes=3, input_size=16, widths=(8, 16),
                            rng=np.random.default_rng(0))
        split = to_split_cnn(base, depth=0.7, num_splits=(2, 2))
        result = train_classifier(split, train, test, epochs=4,
                                  batch_size=16, lr=0.05, seed=0)
        assert result.history[-1].train_loss < result.history[0].train_loss

    def test_stochastic_training_transfers_to_unsplit(self, tiny_data):
        """Train SSCNN, then evaluate the ORIGINAL unsplit model: weights
        are shared, so the unsplit network must perform comparably —
        the §3.3 deployment story."""
        train, test = tiny_data
        base = small_resnet(num_classes=3, input_size=16, widths=(8, 16),
                            rng=np.random.default_rng(0))
        split = to_split_cnn(base, depth=0.7, num_splits=(2, 2),
                             stochastic=True, seed=5)
        train_classifier(split, train, test, epochs=4, batch_size=16,
                         lr=0.05, seed=0)
        unsplit_error = evaluate(base, test, batch_size=16)
        split_eval_error = evaluate(split, test, batch_size=16)
        # SSCNN evaluates unsplit by default -> identical numbers.
        assert unsplit_error == pytest.approx(split_eval_error)
        assert unsplit_error < 0.55  # far better than the 0.67 chance level

    def test_split_does_not_change_parameter_count(self):
        base = small_vgg(rng=np.random.default_rng(0))
        split = to_split_cnn(base, depth=0.5, num_splits=(2, 2))
        assert split.num_parameters() == base.num_parameters()


class TestFullPipeline:
    @pytest.mark.parametrize("scheduler", ["none", "layerwise", "hmms"])
    def test_plan_and_simulate_split_model(self, scheduler):
        model = to_split_cnn(small_vgg(rng=np.random.default_rng(0)),
                             depth=0.75, num_splits=(2, 2))
        graph = build_training_graph(model, 16)
        plan = HMMSPlanner(scheduler=scheduler).plan(graph)
        result = GPUSimulator().run(plan)   # raises on any safety violation
        assert result.total_time > 0

    def test_hmms_plans_are_stall_light(self):
        """HMMS's whole point: its syncs are planned post-drain, so stalls
        stay a tiny fraction of the makespan even at full offload."""
        model = small_vgg(rng=np.random.default_rng(0))
        graph = build_training_graph(model, 64)
        plan = HMMSPlanner(scheduler="hmms").plan(graph)
        result = GPUSimulator().run(plan)
        assert result.stall_time < 0.1 * result.total_time

    def test_scheduler_ordering_matches_paper(self):
        """baseline >= hmms >> layerwise in throughput (Figure 8's shape)."""
        model = small_vgg(rng=np.random.default_rng(0))
        graph = build_training_graph(model, 64)
        times = {}
        for scheduler in ("none", "layerwise", "hmms"):
            plan = HMMSPlanner(scheduler=scheduler).plan(graph)
            times[scheduler] = GPUSimulator().run(plan).total_time
        assert times["none"] <= times["hmms"] <= times["layerwise"]

    def test_simulated_peak_respects_capacity_at_planned_batch(self):
        model = to_split_cnn(small_vgg(rng=np.random.default_rng(0)),
                             depth=0.75, num_splits=(2, 2))
        graph = build_training_graph(model, 32)
        plan = HMMSPlanner(scheduler="hmms").plan(graph)
        device = P100_NVLINK.with_(
            memory_capacity=plan.device_peak + (1 << 20))
        GPUSimulator(device, check_capacity=True).run(plan)

    def test_grouped_mode_end_to_end(self):
        """Paper-literal Algorithm 1 (grouped syncs) also replays safely."""
        from repro.graph import compute_lifetimes
        from repro.hmms import assign_storage, plan_offload, plan_prefetch
        from repro.hmms.planner import HMMSPlanner as Planner
        from repro.profile import CostModel

        model = small_vgg(rng=np.random.default_rng(0))
        graph = build_training_graph(model, 32)

        class GroupedPlanner(Planner):
            def _plan_transfers(self, graph, assignment, lifetimes, fraction):
                plan = plan_offload(graph, assignment, lifetimes,
                                    self.cost_model, self.device, fraction,
                                    grouped_sync=True)
                return plan_prefetch(graph, assignment, lifetimes,
                                     self.cost_model, self.device, plan,
                                     grouped_sync=True)

        plan = GroupedPlanner(scheduler="hmms").plan(graph)
        result = GPUSimulator().run(plan)
        assert result.total_time > 0
